package httpproto

import (
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/bufpool"
)

// Response is one HTTP response to encode.
type Response struct {
	Proto   string // defaults to "HTTP/1.1"
	Status  int
	Headers Header
	Body    []byte
	// Close asks the encoder to add "Connection: close".
	Close bool
}

// NewResponse builds a response with the given status and body, with
// Content-Length and Content-Type preset.
func NewResponse(status int, contentType string, body []byte) *Response {
	r := &Response{Status: status, Headers: NewHeader(), Body: body}
	r.Headers.Set("Content-Type", contentType)
	return r
}

// statusText maps the status codes a static web server emits.
var statusText = map[int]string{
	200: "OK",
	204: "No Content",
	206: "Partial Content",
	301: "Moved Permanently",
	304: "Not Modified",
	400: "Bad Request",
	403: "Forbidden",
	404: "Not Found",
	405: "Method Not Allowed",
	408: "Request Timeout",
	413: "Payload Too Large",
	414: "URI Too Long",
	416: "Range Not Satisfiable",
	500: "Internal Server Error",
	501: "Not Implemented",
	503: "Service Unavailable",
	505: "HTTP Version Not Supported",
}

// StatusText returns the reason phrase for a status code.
func StatusText(code int) string {
	if s, ok := statusText[code]; ok {
		return s
	}
	return "Status " + strconv.Itoa(code)
}

// httpDate formats a time in RFC 1123 GMT form as HTTP requires.
func httpDate(t time.Time) string {
	return t.UTC().Format("Mon, 02 Jan 2006 15:04:05") + " GMT"
}

// AppendResponseHead renders the response head (status line, automatic and
// explicit headers, final CRLF — everything up to but excluding the body)
// onto dst and returns the extended slice. It always emits Content-Length
// (from the body), Date and Server headers unless already present, plus
// "Connection: close" when requested. The Date value comes from the
// once-per-second cache, and all numbers are appended with strconv, so a
// head render performs no allocation beyond dst growth.
func AppendResponseHead(dst []byte, r *Response) []byte {
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	dst = append(dst, proto...)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(r.Status), 10)
	dst = append(dst, ' ')
	dst = append(dst, StatusText(r.Status)...)
	dst = append(dst, '\r', '\n')
	if !r.Headers.Has("Date") {
		dst = append(dst, "Date: "...)
		dst = append(dst, HTTPDateNow()...)
		dst = append(dst, '\r', '\n')
	}
	if !r.Headers.Has("Server") {
		dst = append(dst, "Server: COPS-HTTP/1.0\r\n"...)
	}
	// Content-Length always renders here, whether computed from the
	// in-memory body or preset by a bodiless path (HEAD, streaming), so
	// a HEAD reply is byte-identical to its GET head.
	dst = append(dst, "Content-Length: "...)
	if cl := r.Headers.Get("Content-Length"); cl != "" {
		dst = append(dst, cl...)
	} else {
		dst = strconv.AppendInt(dst, int64(len(r.Body)), 10)
	}
	dst = append(dst, '\r', '\n')
	if r.Close && r.Headers.Get("Connection") == "" {
		dst = append(dst, "Connection: close\r\n"...)
	}
	r.Headers.Each(func(k, v string) {
		if k == "Content-Length" { // already rendered above
			return
		}
		dst = append(dst, k...)
		dst = append(dst, ':', ' ')
		dst = append(dst, v...)
		dst = append(dst, '\r', '\n')
	})
	return append(dst, '\r', '\n')
}

// EncodeResponse renders the response head and body into one slice. The
// hot serve path uses WriteResponse (which never combines head and body);
// EncodeResponse remains for callers that need the full wire image.
func EncodeResponse(r *Response) []byte {
	// Pre-size: head is typically < 256 bytes.
	out := make([]byte, 0, 256+len(r.Body))
	out = AppendResponseHead(out, r)
	return append(out, r.Body...)
}

// headSizeHint sizes the pooled head buffer; a static-server head is well
// under this, so the lease always comes from the smallest pool class.
const headSizeHint = 512

// WriteResponse renders the head into a pooled buffer and writes head and
// body to w as separate segments via net.Buffers — a single writev(2) on a
// TCP connection — so the body (the 16 KB-mean cached file) is never
// memcpy'd into a combined response slice.
func WriteResponse(w io.Writer, r *Response) (int64, error) {
	lease := bufpool.Get(headSizeHint)
	head := AppendResponseHead(lease.Bytes()[:0], r)
	var bufs net.Buffers
	if len(r.Body) > 0 {
		bufs = net.Buffers{head, r.Body}
	} else {
		bufs = net.Buffers{head}
	}
	n, err := bufs.WriteTo(w)
	lease.Release()
	return n, err
}

// responsePool recycles Response values (with their Header storage) across
// requests on the serve hot path.
var responsePool = sync.Pool{
	New: func() any { return &Response{Headers: NewHeader()} },
}

// AcquireResponse returns an empty pooled Response ready for use. Callers
// that hand it to ReleaseResponse after the reply is written complete the
// serve path without allocating the Response or its header map.
func AcquireResponse() *Response {
	return responsePool.Get().(*Response)
}

// ReleaseResponse clears r and returns it to the pool. The caller must not
// touch r (or slices obtained from it) afterwards, and must not release
// responses it could not have exclusively owned.
func ReleaseResponse(r *Response) {
	r.Proto = ""
	r.Status = 0
	r.Body = nil
	r.Close = false
	r.Headers.Reset()
	responsePool.Put(r)
}

// errorPages holds the prebuilt HTML bodies for every known status so the
// error path performs no formatting.
var errorPages = func() map[int][]byte {
	pages := make(map[int][]byte, len(statusText))
	for status := range statusText {
		pages[status] = buildErrorPage(status)
	}
	return pages
}()

// buildErrorPage renders the minimal error document for a status code.
func buildErrorPage(status int) []byte {
	text := StatusText(status)
	b := make([]byte, 0, 96)
	b = append(b, "<html><head><title>"...)
	b = strconv.AppendInt(b, int64(status), 10)
	b = append(b, ' ')
	b = append(b, text...)
	b = append(b, "</title></head><body><h1>"...)
	b = strconv.AppendInt(b, int64(status), 10)
	b = append(b, ' ')
	b = append(b, text...)
	b = append(b, "</h1></body></html>\n"...)
	return b
}

// ErrorPage returns the shared prebuilt HTML body for a status code.
// Callers must treat it as read-only.
func ErrorPage(status int) []byte {
	if body, ok := errorPages[status]; ok {
		return body
	}
	return buildErrorPage(status)
}

// ErrorResponse builds a minimal HTML error page response. The body is a
// shared prebuilt page; callers must treat it as read-only.
func ErrorResponse(status int, close bool) *Response {
	body, ok := errorPages[status]
	if !ok {
		body = buildErrorPage(status)
	}
	r := NewResponse(status, "text/html", body)
	r.Close = close
	return r
}

// mimeTypes maps file extensions (lowercase, with dot) to content types.
var mimeTypes = map[string]string{
	".html": "text/html",
	".htm":  "text/html",
	".txt":  "text/plain",
	".css":  "text/css",
	".js":   "application/javascript",
	".json": "application/json",
	".xml":  "text/xml",
	".gif":  "image/gif",
	".jpg":  "image/jpeg",
	".jpeg": "image/jpeg",
	".png":  "image/png",
	".ico":  "image/x-icon",
	".svg":  "image/svg+xml",
	".pdf":  "application/pdf",
	".gz":   "application/gzip",
	".tar":  "application/x-tar",
	".zip":  "application/zip",
	".mp3":  "audio/mpeg",
	".mp4":  "video/mp4",
	".wasm": "application/wasm",
}

// MimeType returns the content type for a file name by extension, with
// application/octet-stream as the default.
func MimeType(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		switch name[i] {
		case '.':
			ext := lowerASCII(name[i:])
			if mt, ok := mimeTypes[ext]; ok {
				return mt
			}
			return "application/octet-stream"
		case '/':
			return "application/octet-stream"
		}
	}
	return "application/octet-stream"
}

func lowerASCII(s string) string {
	// Already-lowercase extensions (the common case) pass through without
	// allocating.
	upper := false
	for i := 0; i < len(s); i++ {
		if 'A' <= s[i] && s[i] <= 'Z' {
			upper = true
			break
		}
	}
	if !upper {
		return s
	}
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + ('a' - 'A')
		}
	}
	return string(b)
}

// Codec adapts the protocol library to the N-Server pipeline: Decode
// parses one request (the Decode Request hook) and Encode renders a
// *Response (the Encode Reply hook).
type Codec struct{}

// Decode implements nserver.Codec.
func (Codec) Decode(buf []byte) (any, int, error) {
	req, n, err := ParseRequest(buf)
	if err != nil {
		return nil, 0, err
	}
	if req == nil {
		return nil, 0, nil
	}
	return req, n, nil
}

// Encode implements nserver.Codec.
func (Codec) Encode(reply any) ([]byte, error) {
	switch v := reply.(type) {
	case *Response:
		return EncodeResponse(v), nil
	case []byte:
		return v, nil
	default:
		return nil, fmt.Errorf("httpproto: cannot encode %T", reply)
	}
}

// AppendHead implements nserver.BufferEncoder: the head is rendered onto
// dst (typically a pooled buffer) and the body is returned as-is, so the
// framework can send both with one writev instead of combining them.
func (Codec) AppendHead(dst []byte, reply any) (head, body []byte, err error) {
	switch v := reply.(type) {
	case *Response:
		return AppendResponseHead(dst, v), v.Body, nil
	case []byte:
		// Raw replies have no head; send the bytes as the body segment.
		return dst, v, nil
	default:
		return nil, nil, fmt.Errorf("httpproto: cannot encode %T", reply)
	}
}
