// Package httpproto is the handcrafted HTTP protocol library of COPS-HTTP:
// an incremental HTTP/1.0-1.1 request parser, a response encoder, and the
// small lookup tables (status text, MIME types) a static-content web
// server needs. It corresponds to the 449 NCSS of "HTTP protocol code" in
// Table 4 — deliberately independent of both the framework and the server
// logic, so it plugs into the N-Server pipeline as the Decode Request /
// Encode Reply hook methods.
package httpproto

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
)

// Limits enforced by the parser.
const (
	// MaxHeaderBytes bounds the request line plus all header lines.
	MaxHeaderBytes = 16 << 10
	// MaxBodyBytes bounds an announced request body.
	MaxBodyBytes = 1 << 20
)

// Parse errors.
var (
	ErrHeaderTooLarge = errors.New("httpproto: header block exceeds limit")
	ErrBadRequestLine = errors.New("httpproto: malformed request line")
	ErrBadHeader      = errors.New("httpproto: malformed header line")
	ErrBadVersion     = errors.New("httpproto: unsupported protocol version")
	ErrBodyTooLarge   = errors.New("httpproto: request body exceeds limit")
	ErrBadPath        = errors.New("httpproto: malformed request path")
)

// Request is one parsed HTTP request.
type Request struct {
	Method  string
	Target  string // raw request-target as received
	Path    string // decoded, cleaned absolute path
	Query   string // raw query string (after '?'), if any
	Proto   string // "HTTP/1.0" or "HTTP/1.1"
	Headers Header
	Body    []byte
	// Refuse, when non-zero, is the status the server must answer with
	// before closing the connection: the request head was well-formed
	// enough to respond to, but it announced its body with a mechanism
	// this parser does not implement (Transfer-Encoding), so the rest of
	// the stream cannot be framed. The parser consumes every remaining
	// buffered byte so none of the unframeable body is replayed as a
	// pipelined request.
	Refuse int
}

// KeepAlive reports whether the connection persists after this request
// under the protocol's defaults and the Connection header, parsed as the
// comma-separated option list of RFC 9112 §9.6 — so "close, te" closes an
// HTTP/1.1 connection and "keep-alive, upgrade" keeps an HTTP/1.0 one
// alive. A refused request never persists: its body was never framed, so
// the bytes that follow it are not a request boundary.
func (r *Request) KeepAlive() bool {
	if r.Refuse != 0 {
		return false
	}
	conn := r.Headers.Get("Connection")
	if r.Proto == "HTTP/1.1" {
		return !hasConnOption(conn, "close")
	}
	return hasConnOption(conn, "keep-alive") // HTTP/1.0 defaults to close
}

// hasConnOption reports whether a Connection field value, read as a
// comma-separated option list, contains opt (ASCII case-insensitive).
// Slicing plus EqualFold keeps the scan allocation-free on the hot path.
func hasConnOption(list, opt string) bool {
	for len(list) > 0 {
		elem := list
		if i := strings.IndexByte(list, ','); i >= 0 {
			elem, list = list[:i], list[i+1:]
		} else {
			list = ""
		}
		if strings.EqualFold(trimOWS(elem), opt) {
			return true
		}
	}
	return false
}

// trimOWS trims optional whitespace (SP / HTAB — and only those; other
// control bytes are not OWS and must survive to fail validation).
func trimOWS(s string) string { return strings.Trim(s, " \t") }

// Header is a minimal case-insensitive header map preserving insertion
// order for encoding.
type Header struct {
	keys []string
	vals map[string]string
}

// NewHeader returns an empty header map.
func NewHeader() Header {
	return Header{vals: make(map[string]string)}
}

// Set stores a header value, replacing any previous value.
func (h *Header) Set(key, value string) {
	if h.vals == nil {
		h.vals = make(map[string]string)
	}
	ck := canonical(key)
	if _, exists := h.vals[ck]; !exists {
		h.keys = append(h.keys, ck)
	}
	h.vals[ck] = value
}

// Add appends a header value: a repeated key extends the stored value as
// a comma-separated list per the RFC 9110 §5.2 combination rule. The
// request parser fills headers through Add so duplicate field lines stay
// visible to later checks — a second Content-Length can then never hide
// behind a last-write-wins Set (the §8.6 smuggling defense).
func (h *Header) Add(key, value string) {
	if h.vals == nil {
		h.vals = make(map[string]string)
	}
	ck := canonical(key)
	if prev, exists := h.vals[ck]; exists {
		h.vals[ck] = prev + ", " + value
		return
	}
	h.keys = append(h.keys, ck)
	h.vals[ck] = value
}

// Get returns the value for key ("" when absent).
func (h *Header) Get(key string) string {
	if h.vals == nil {
		return ""
	}
	return h.vals[canonical(key)]
}

// Has reports whether the header is present.
func (h *Header) Has(key string) bool {
	if h.vals == nil {
		return false
	}
	_, ok := h.vals[canonical(key)]
	return ok
}

// Len returns the number of distinct header keys.
func (h *Header) Len() int { return len(h.keys) }

// Each calls f for every header in insertion order.
func (h *Header) Each(f func(key, value string)) {
	for _, k := range h.keys {
		f(k, h.vals[k])
	}
}

// Reset empties the header for reuse, keeping the allocated map and key
// slice (the Response pool relies on this to make header writes free in
// steady state).
func (h *Header) Reset() {
	h.keys = h.keys[:0]
	clear(h.vals)
}

// canonical normalizes a header key to Canonical-Dash-Form. Keys that are
// already canonical — every key the server itself sets — are returned
// unchanged without allocating.
func canonical(key string) string {
	upper := true
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (upper && 'a' <= c && c <= 'z') || (!upper && 'A' <= c && c <= 'Z') {
			return canonicalize(key)
		}
		upper = c == '-'
	}
	return key
}

// canonicalize is the allocating slow path of canonical.
func canonicalize(key string) string {
	b := []byte(key)
	upper := true
	for i, c := range b {
		switch {
		case upper && 'a' <= c && c <= 'z':
			b[i] = c - ('a' - 'A')
		case !upper && 'A' <= c && c <= 'Z':
			b[i] = c + ('a' - 'A')
		}
		upper = c == '-'
	}
	return string(b)
}

// ParseRequest attempts to parse one complete request from buf. It
// returns the request and the number of bytes consumed; n == 0 with a nil
// error means buf does not yet hold a complete request (read more). A
// non-nil error means the stream is unrecoverable and the connection
// should close.
func ParseRequest(buf []byte) (*Request, int, error) {
	headerEnd := bytes.Index(buf, []byte("\r\n\r\n"))
	if headerEnd < 0 {
		if len(buf) > MaxHeaderBytes {
			return nil, 0, ErrHeaderTooLarge
		}
		return nil, 0, nil
	}
	if headerEnd > MaxHeaderBytes {
		return nil, 0, ErrHeaderTooLarge
	}
	head := buf[:headerEnd]
	consumed := headerEnd + 4

	lines := strings.Split(string(head), "\r\n")
	req, err := parseRequestLine(lines[0])
	if err != nil {
		return nil, 0, err
	}
	for _, line := range lines[1:] {
		if err := parseHeaderLine(&req.Headers, line); err != nil {
			return nil, 0, err
		}
	}

	// Transfer-Encoding is not implemented: the head is answerable but
	// the body is unframeable, so refuse with 501 and poison the rest of
	// the buffered stream (whatever follows could be body bytes that must
	// never be parsed as the next pipelined request). When Content-Length
	// is also present this still refuses: honoring the length while a
	// Transfer-Encoding stands is the classic TE.CL desync.
	if req.Headers.Has("Transfer-Encoding") {
		req.Refuse = 501
		return req, len(buf), nil
	}

	// Optional body, announced by Content-Length.
	if cl := req.Headers.Get("Content-Length"); cl != "" {
		n, ok := parseContentLength(cl)
		if !ok {
			return nil, 0, fmt.Errorf("%w: bad Content-Length %q", ErrBadHeader, cl)
		}
		if n > MaxBodyBytes {
			return nil, 0, ErrBodyTooLarge
		}
		if int64(len(buf)-consumed) < n {
			return nil, 0, nil // body incomplete
		}
		req.Body = append([]byte(nil), buf[consumed:consumed+int(n)]...)
		consumed += int(n)
	}
	return req, consumed, nil
}

// parseContentLength validates a Content-Length field value. Duplicate
// Content-Length lines arrive comma-joined (Header.Add), and RFC 9110
// §8.6 permits such a list only when every element is the same valid
// value; differing elements are a smuggling vector and reject the
// request. ok is false when the value violates the grammar.
func parseContentLength(v string) (int64, bool) {
	first, rest := "", v
	var n int64 = -1
	for {
		elem := rest
		if i := strings.IndexByte(rest, ','); i >= 0 {
			elem, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		elem = trimOWS(elem)
		if first == "" {
			m, ok := parseCLValue(elem)
			if !ok {
				return -1, false
			}
			first, n = elem, m
		} else if elem != first {
			return -1, false
		}
		if rest == "" {
			return n, true
		}
	}
}

// parseCLValue parses one 1*DIGIT Content-Length element: no sign, no
// whitespace, no base prefix — strconv.Atoi's tolerance of "+5" is
// exactly the gap desync attacks walk through. Oversized values clamp to
// MaxBodyBytes+1 (well-formed, just beyond the cap) so the caller can
// report ErrBodyTooLarge rather than a grammar error.
func parseCLValue(s string) (int64, bool) {
	if s == "" {
		return -1, false
	}
	var n int64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return -1, false
		}
		if n > MaxBodyBytes { // already oversized; keep validating digits
			continue
		}
		n = n*10 + int64(c-'0')
	}
	if n > MaxBodyBytes {
		return MaxBodyBytes + 1, true
	}
	return n, true
}

func parseRequestLine(line string) (*Request, error) {
	parts := strings.Split(line, " ")
	if len(parts) != 3 {
		return nil, fmt.Errorf("%w: %q", ErrBadRequestLine, line)
	}
	method, target, proto := parts[0], parts[1], parts[2]
	if method == "" || !isToken(method) {
		return nil, fmt.Errorf("%w: bad method %q", ErrBadRequestLine, method)
	}
	if proto != "HTTP/1.0" && proto != "HTTP/1.1" {
		return nil, fmt.Errorf("%w: %q", ErrBadVersion, proto)
	}
	if target == "" || target[0] != '/' {
		return nil, fmt.Errorf("%w: target %q", ErrBadRequestLine, target)
	}
	rawPath, query, _ := strings.Cut(target, "?")
	path, err := decodePath(rawPath)
	if err != nil {
		return nil, err
	}
	return &Request{
		Method:  method,
		Target:  target,
		Path:    CleanPath(path),
		Query:   query,
		Proto:   proto,
		Headers: NewHeader(),
	}, nil
}

func parseHeaderLine(h *Header, line string) error {
	if line == "" {
		return nil
	}
	key, val, ok := strings.Cut(line, ":")
	if !ok || key == "" || strings.ContainsAny(key, " \t") {
		return fmt.Errorf("%w: %q", ErrBadHeader, line)
	}
	// Add, not Set: repeated field lines combine into a comma list so a
	// duplicated header can never silently last-win. Only OWS is trimmed;
	// stray control bytes stay in the value and fail later validation.
	h.Add(key, trimOWS(val))
	return nil
}

// isToken reports whether s is a valid HTTP token (method name).
func isToken(s string) bool {
	for _, c := range []byte(s) {
		switch {
		case 'A' <= c && c <= 'Z', 'a' <= c && c <= 'z', '0' <= c && c <= '9':
		case strings.IndexByte("!#$%&'*+-.^_`|~", c) >= 0:
		default:
			return false
		}
	}
	return true
}

// decodePath percent-decodes a request path. Two decoded bytes are
// rejected outright: NUL (%00), which C-string filesystem layers would
// truncate at, and "/" (%2F), which would materialize a new path segment
// after the traversal checks already ran on the encoded form.
func decodePath(p string) (string, error) {
	if !strings.Contains(p, "%") {
		return p, nil
	}
	var b strings.Builder
	for i := 0; i < len(p); i++ {
		if p[i] != '%' {
			b.WriteByte(p[i])
			continue
		}
		if i+2 >= len(p) {
			return "", fmt.Errorf("%w: truncated escape in %q", ErrBadPath, p)
		}
		hi, err1 := unhex(p[i+1])
		lo, err2 := unhex(p[i+2])
		if err1 != nil || err2 != nil {
			return "", fmt.Errorf("%w: bad escape in %q", ErrBadPath, p)
		}
		switch c := hi<<4 | lo; c {
		case 0:
			return "", fmt.Errorf("%w: encoded NUL in %q", ErrBadPath, p)
		case '/':
			return "", fmt.Errorf("%w: encoded slash in %q", ErrBadPath, p)
		default:
			b.WriteByte(c)
		}
		i += 2
	}
	return b.String(), nil
}

func unhex(c byte) (byte, error) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', nil
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, nil
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, nil
	}
	return 0, ErrBadPath
}

// CleanPath normalizes an absolute request path: it collapses duplicate
// slashes, resolves "." and "..", and never escapes the root — the
// document-root traversal defence every static file server needs.
func CleanPath(p string) string {
	segs := strings.Split(p, "/")
	out := make([]string, 0, len(segs))
	for _, s := range segs {
		switch s {
		case "", ".":
		case "..":
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
		default:
			out = append(out, s)
		}
	}
	cleaned := "/" + strings.Join(out, "/")
	if len(out) > 0 && (strings.HasSuffix(p, "/") || strings.HasSuffix(p, "/.") || strings.HasSuffix(p, "/..")) {
		// Preserve directory-ness only for real directories requests.
		if cleaned != "/" {
			cleaned += "/"
		}
	}
	return cleaned
}
