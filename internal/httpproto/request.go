// Package httpproto is the handcrafted HTTP protocol library of COPS-HTTP:
// an incremental HTTP/1.0-1.1 request parser, a response encoder, and the
// small lookup tables (status text, MIME types) a static-content web
// server needs. It corresponds to the 449 NCSS of "HTTP protocol code" in
// Table 4 — deliberately independent of both the framework and the server
// logic, so it plugs into the N-Server pipeline as the Decode Request /
// Encode Reply hook methods.
package httpproto

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Limits enforced by the parser.
const (
	// MaxHeaderBytes bounds the request line plus all header lines.
	MaxHeaderBytes = 16 << 10
	// MaxBodyBytes bounds an announced request body.
	MaxBodyBytes = 1 << 20
)

// Parse errors.
var (
	ErrHeaderTooLarge = errors.New("httpproto: header block exceeds limit")
	ErrBadRequestLine = errors.New("httpproto: malformed request line")
	ErrBadHeader      = errors.New("httpproto: malformed header line")
	ErrBadVersion     = errors.New("httpproto: unsupported protocol version")
	ErrBodyTooLarge   = errors.New("httpproto: request body exceeds limit")
	ErrBadPath        = errors.New("httpproto: malformed request path")
)

// Request is one parsed HTTP request.
type Request struct {
	Method  string
	Target  string // raw request-target as received
	Path    string // decoded, cleaned absolute path
	Query   string // raw query string (after '?'), if any
	Proto   string // "HTTP/1.0" or "HTTP/1.1"
	Headers Header
	Body    []byte
}

// KeepAlive reports whether the connection persists after this request
// under the protocol's defaults and Connection header.
func (r *Request) KeepAlive() bool {
	conn := strings.ToLower(r.Headers.Get("Connection"))
	switch r.Proto {
	case "HTTP/1.1":
		return conn != "close"
	default: // HTTP/1.0
		return conn == "keep-alive"
	}
}

// Header is a minimal case-insensitive header map preserving insertion
// order for encoding.
type Header struct {
	keys []string
	vals map[string]string
}

// NewHeader returns an empty header map.
func NewHeader() Header {
	return Header{vals: make(map[string]string)}
}

// Set stores a header value, replacing any previous value.
func (h *Header) Set(key, value string) {
	if h.vals == nil {
		h.vals = make(map[string]string)
	}
	ck := canonical(key)
	if _, exists := h.vals[ck]; !exists {
		h.keys = append(h.keys, ck)
	}
	h.vals[ck] = value
}

// Get returns the value for key ("" when absent).
func (h *Header) Get(key string) string {
	if h.vals == nil {
		return ""
	}
	return h.vals[canonical(key)]
}

// Has reports whether the header is present.
func (h *Header) Has(key string) bool {
	if h.vals == nil {
		return false
	}
	_, ok := h.vals[canonical(key)]
	return ok
}

// Len returns the number of distinct header keys.
func (h *Header) Len() int { return len(h.keys) }

// Each calls f for every header in insertion order.
func (h *Header) Each(f func(key, value string)) {
	for _, k := range h.keys {
		f(k, h.vals[k])
	}
}

// Reset empties the header for reuse, keeping the allocated map and key
// slice (the Response pool relies on this to make header writes free in
// steady state).
func (h *Header) Reset() {
	h.keys = h.keys[:0]
	clear(h.vals)
}

// canonical normalizes a header key to Canonical-Dash-Form. Keys that are
// already canonical — every key the server itself sets — are returned
// unchanged without allocating.
func canonical(key string) string {
	upper := true
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (upper && 'a' <= c && c <= 'z') || (!upper && 'A' <= c && c <= 'Z') {
			return canonicalize(key)
		}
		upper = c == '-'
	}
	return key
}

// canonicalize is the allocating slow path of canonical.
func canonicalize(key string) string {
	b := []byte(key)
	upper := true
	for i, c := range b {
		switch {
		case upper && 'a' <= c && c <= 'z':
			b[i] = c - ('a' - 'A')
		case !upper && 'A' <= c && c <= 'Z':
			b[i] = c + ('a' - 'A')
		}
		upper = c == '-'
	}
	return string(b)
}

// ParseRequest attempts to parse one complete request from buf. It
// returns the request and the number of bytes consumed; n == 0 with a nil
// error means buf does not yet hold a complete request (read more). A
// non-nil error means the stream is unrecoverable and the connection
// should close.
func ParseRequest(buf []byte) (*Request, int, error) {
	headerEnd := bytes.Index(buf, []byte("\r\n\r\n"))
	if headerEnd < 0 {
		if len(buf) > MaxHeaderBytes {
			return nil, 0, ErrHeaderTooLarge
		}
		return nil, 0, nil
	}
	if headerEnd > MaxHeaderBytes {
		return nil, 0, ErrHeaderTooLarge
	}
	head := buf[:headerEnd]
	consumed := headerEnd + 4

	lines := strings.Split(string(head), "\r\n")
	req, err := parseRequestLine(lines[0])
	if err != nil {
		return nil, 0, err
	}
	for _, line := range lines[1:] {
		if err := parseHeaderLine(&req.Headers, line); err != nil {
			return nil, 0, err
		}
	}

	// Optional body, announced by Content-Length.
	if cl := req.Headers.Get("Content-Length"); cl != "" {
		n, err := strconv.Atoi(strings.TrimSpace(cl))
		if err != nil || n < 0 {
			return nil, 0, fmt.Errorf("%w: bad Content-Length %q", ErrBadHeader, cl)
		}
		if n > MaxBodyBytes {
			return nil, 0, ErrBodyTooLarge
		}
		if len(buf) < consumed+n {
			return nil, 0, nil // body incomplete
		}
		req.Body = append([]byte(nil), buf[consumed:consumed+n]...)
		consumed += n
	}
	return req, consumed, nil
}

func parseRequestLine(line string) (*Request, error) {
	parts := strings.Split(line, " ")
	if len(parts) != 3 {
		return nil, fmt.Errorf("%w: %q", ErrBadRequestLine, line)
	}
	method, target, proto := parts[0], parts[1], parts[2]
	if method == "" || !isToken(method) {
		return nil, fmt.Errorf("%w: bad method %q", ErrBadRequestLine, method)
	}
	if proto != "HTTP/1.0" && proto != "HTTP/1.1" {
		return nil, fmt.Errorf("%w: %q", ErrBadVersion, proto)
	}
	if target == "" || target[0] != '/' {
		return nil, fmt.Errorf("%w: target %q", ErrBadRequestLine, target)
	}
	rawPath, query, _ := strings.Cut(target, "?")
	path, err := decodePath(rawPath)
	if err != nil {
		return nil, err
	}
	return &Request{
		Method:  method,
		Target:  target,
		Path:    CleanPath(path),
		Query:   query,
		Proto:   proto,
		Headers: NewHeader(),
	}, nil
}

func parseHeaderLine(h *Header, line string) error {
	if line == "" {
		return nil
	}
	key, val, ok := strings.Cut(line, ":")
	if !ok || key == "" || strings.ContainsAny(key, " \t") {
		return fmt.Errorf("%w: %q", ErrBadHeader, line)
	}
	h.Set(key, strings.TrimSpace(val))
	return nil
}

// isToken reports whether s is a valid HTTP token (method name).
func isToken(s string) bool {
	for _, c := range []byte(s) {
		switch {
		case 'A' <= c && c <= 'Z', 'a' <= c && c <= 'z', '0' <= c && c <= '9':
		case strings.IndexByte("!#$%&'*+-.^_`|~", c) >= 0:
		default:
			return false
		}
	}
	return true
}

// decodePath percent-decodes a request path. Two decoded bytes are
// rejected outright: NUL (%00), which C-string filesystem layers would
// truncate at, and "/" (%2F), which would materialize a new path segment
// after the traversal checks already ran on the encoded form.
func decodePath(p string) (string, error) {
	if !strings.Contains(p, "%") {
		return p, nil
	}
	var b strings.Builder
	for i := 0; i < len(p); i++ {
		if p[i] != '%' {
			b.WriteByte(p[i])
			continue
		}
		if i+2 >= len(p) {
			return "", fmt.Errorf("%w: truncated escape in %q", ErrBadPath, p)
		}
		hi, err1 := unhex(p[i+1])
		lo, err2 := unhex(p[i+2])
		if err1 != nil || err2 != nil {
			return "", fmt.Errorf("%w: bad escape in %q", ErrBadPath, p)
		}
		switch c := hi<<4 | lo; c {
		case 0:
			return "", fmt.Errorf("%w: encoded NUL in %q", ErrBadPath, p)
		case '/':
			return "", fmt.Errorf("%w: encoded slash in %q", ErrBadPath, p)
		default:
			b.WriteByte(c)
		}
		i += 2
	}
	return b.String(), nil
}

func unhex(c byte) (byte, error) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', nil
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, nil
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, nil
	}
	return 0, ErrBadPath
}

// CleanPath normalizes an absolute request path: it collapses duplicate
// slashes, resolves "." and "..", and never escapes the root — the
// document-root traversal defence every static file server needs.
func CleanPath(p string) string {
	segs := strings.Split(p, "/")
	out := make([]string, 0, len(segs))
	for _, s := range segs {
		switch s {
		case "", ".":
		case "..":
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
		default:
			out = append(out, s)
		}
	}
	cleaned := "/" + strings.Join(out, "/")
	if len(out) > 0 && (strings.HasSuffix(p, "/") || strings.HasSuffix(p, "/.") || strings.HasSuffix(p, "/..")) {
		// Preserve directory-ness only for real directories requests.
		if cleaned != "/" {
			cleaned += "/"
		}
	}
	return cleaned
}
