package httpproto

import (
	"bytes"
	"testing"
)

// FuzzParseRequest drives the incremental parser with arbitrary bytes:
// it must never panic, never over-consume, and anything it parses must
// satisfy basic well-formedness.
func FuzzParseRequest(f *testing.F) {
	f.Add([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
	f.Add([]byte("POST /a HTTP/1.0\r\nContent-Length: 3\r\n\r\nabc"))
	f.Add([]byte("GET /%41%zz HTTP/1.1\r\n\r\n"))
	f.Add([]byte("\r\n\r\n"))
	f.Add(bytes.Repeat([]byte("A"), MaxHeaderBytes+10))
	f.Add([]byte("POST /a HTTP/1.1\r\nContent-Length: +3\r\n\r\nabc"))
	f.Add([]byte("POST /a HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 0\r\n\r\nabc"))
	f.Add([]byte("POST /a HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\nGET /x HTTP/1.1\r\n\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, n, err := ParseRequest(data)
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		if err == nil && req != nil {
			if n == 0 {
				t.Fatal("request parsed but nothing consumed")
			}
			if req.Method == "" || req.Path == "" || req.Path[0] != '/' {
				t.Fatalf("malformed accepted request: %+v", req)
			}
			if req.Proto != "HTTP/1.0" && req.Proto != "HTTP/1.1" {
				t.Fatalf("bad proto accepted: %q", req.Proto)
			}
			// Consumed-bytes consistency, the pipelining framing
			// invariant: a refusal must poison the whole buffer, a normal
			// parse must consume exactly head+body, and re-parsing the
			// same prefix must reproduce the same framing decision.
			if req.Refuse != 0 {
				if n != len(data) {
					t.Fatalf("refused request consumed %d of %d", n, len(data))
				}
			} else {
				if cl := req.Headers.Get("Content-Length"); cl != "" {
					want, ok := parseContentLength(cl)
					if !ok || int64(len(req.Body)) != want {
						t.Fatalf("accepted CL %q but body is %d bytes", cl, len(req.Body))
					}
				} else if len(req.Body) != 0 {
					t.Fatalf("body %d bytes without Content-Length", len(req.Body))
				}
				req2, n2, err2 := ParseRequest(data[:n])
				if err2 != nil || req2 == nil || n2 != n {
					t.Fatalf("re-parse of consumed prefix diverged: n=%d n2=%d err2=%v", n, n2, err2)
				}
				if req2.Method != req.Method || req2.Target != req.Target ||
					req2.Proto != req.Proto || !bytes.Equal(req2.Body, req.Body) {
					t.Fatalf("re-parse of consumed prefix changed the request")
				}
			}
		}
	})
}

// FuzzCleanPath asserts the traversal-defence invariant for arbitrary
// path strings: the result is always absolute and never contains ".."
// segments.
func FuzzCleanPath(f *testing.F) {
	f.Add("/../../etc/passwd")
	f.Add("//a//../b/./c/")
	f.Add("")
	f.Fuzz(func(t *testing.T, p string) {
		out := CleanPath(p)
		if len(out) == 0 || out[0] != '/' {
			t.Fatalf("CleanPath(%q) = %q not absolute", p, out)
		}
		for _, seg := range bytes.Split([]byte(out), []byte("/")) {
			if string(seg) == ".." {
				t.Fatalf("CleanPath(%q) = %q contains ..", p, out)
			}
		}
	})
}
