package httpproto

import (
	"bytes"
	"testing"
)

// FuzzParseRequest drives the incremental parser with arbitrary bytes:
// it must never panic, never over-consume, and anything it parses must
// satisfy basic well-formedness.
func FuzzParseRequest(f *testing.F) {
	f.Add([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
	f.Add([]byte("POST /a HTTP/1.0\r\nContent-Length: 3\r\n\r\nabc"))
	f.Add([]byte("GET /%41%zz HTTP/1.1\r\n\r\n"))
	f.Add([]byte("\r\n\r\n"))
	f.Add(bytes.Repeat([]byte("A"), MaxHeaderBytes+10))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, n, err := ParseRequest(data)
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		if err == nil && req != nil {
			if n == 0 {
				t.Fatal("request parsed but nothing consumed")
			}
			if req.Method == "" || req.Path == "" || req.Path[0] != '/' {
				t.Fatalf("malformed accepted request: %+v", req)
			}
			if req.Proto != "HTTP/1.0" && req.Proto != "HTTP/1.1" {
				t.Fatalf("bad proto accepted: %q", req.Proto)
			}
		}
	})
}

// FuzzCleanPath asserts the traversal-defence invariant for arbitrary
// path strings: the result is always absolute and never contains ".."
// segments.
func FuzzCleanPath(f *testing.F) {
	f.Add("/../../etc/passwd")
	f.Add("//a//../b/./c/")
	f.Add("")
	f.Fuzz(func(t *testing.T, p string) {
		out := CleanPath(p)
		if len(out) == 0 || out[0] != '/' {
			t.Fatalf("CleanPath(%q) = %q not absolute", p, out)
		}
		for _, seg := range bytes.Split([]byte(out), []byte("/")) {
			if string(seg) == ".." {
				t.Fatalf("CleanPath(%q) = %q contains ..", p, out)
			}
		}
	})
}
