package httpproto

import (
	"errors"
	"strings"
	"testing"
)

func TestParseRange(t *testing.T) {
	const size = 1000
	cases := []struct {
		name  string
		value string
		want  ByteRange
		err   error
	}{
		{"first-last", "bytes=0-499", ByteRange{0, 500}, nil},
		{"middle", "bytes=500-999", ByteRange{500, 500}, nil},
		{"single byte", "bytes=0-0", ByteRange{0, 1}, nil},
		{"last byte", "bytes=999-999", ByteRange{999, 1}, nil},
		{"open-ended", "bytes=500-", ByteRange{500, 500}, nil},
		{"last clamped to end", "bytes=900-5000", ByteRange{900, 100}, nil},
		{"suffix", "bytes=-500", ByteRange{500, 500}, nil},
		{"suffix longer than file", "bytes=-2000", ByteRange{0, 1000}, nil},
		{"unit case-insensitive", "BYTES=0-0", ByteRange{0, 1}, nil},
		{"whitespace tolerated", "bytes= 0 - 499 ", ByteRange{0, 500}, nil},

		{"start at size", "bytes=1000-", ByteRange{}, ErrRangeUnsatisfiable},
		{"start beyond size", "bytes=1500-2000", ByteRange{}, ErrRangeUnsatisfiable},
		{"zero suffix", "bytes=-0", ByteRange{}, ErrRangeUnsatisfiable},

		{"other unit", "pages=1-2", ByteRange{}, ErrNoRange},
		{"no equals", "bytes 0-499", ByteRange{}, ErrNoRange},
		{"multi-range", "bytes=0-1,5-9", ByteRange{}, ErrNoRange},
		{"inverted", "bytes=500-100", ByteRange{}, ErrNoRange},
		{"no dash", "bytes=500", ByteRange{}, ErrNoRange},
		{"empty spec", "bytes=", ByteRange{}, ErrNoRange},
		{"bare dash", "bytes=-", ByteRange{}, ErrNoRange},
		{"non-numeric", "bytes=a-b", ByteRange{}, ErrNoRange},
		{"signed first", "bytes=+1-2", ByteRange{}, ErrNoRange},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseRange(tc.value, size)
			if !errors.Is(err, tc.err) {
				t.Fatalf("ParseRange(%q) error = %v, want %v", tc.value, err, tc.err)
			}
			if err == nil && got != tc.want {
				t.Fatalf("ParseRange(%q) = %+v, want %+v", tc.value, got, tc.want)
			}
		})
	}
}

func TestParseRangeEmptyRepresentation(t *testing.T) {
	// Per RFC 9110 §15.5.17 every range is unsatisfiable against a
	// zero-length representation.
	for _, v := range []string{"bytes=0-", "bytes=0-0", "bytes=-1"} {
		if _, err := ParseRange(v, 0); !errors.Is(err, ErrRangeUnsatisfiable) {
			t.Errorf("ParseRange(%q, 0) error = %v, want unsatisfiable", v, err)
		}
	}
}

func TestContentRange(t *testing.T) {
	if got := ContentRange(ByteRange{Start: 0, Length: 500}, 1000); got != "bytes 0-499/1000" {
		t.Errorf("ContentRange = %q", got)
	}
	if got := ContentRange(ByteRange{Start: 999, Length: 1}, 1000); got != "bytes 999-999/1000" {
		t.Errorf("ContentRange = %q", got)
	}
	if got := ContentRangeUnsatisfiable(1000); got != "bytes */1000" {
		t.Errorf("ContentRangeUnsatisfiable = %q", got)
	}
}

// FuzzParseRange drives the Range parser with arbitrary header values and
// sizes: it must never panic, and any accepted range must select a
// non-empty in-bounds span. Seeds cover the RFC 9110 §14 edge shapes.
func FuzzParseRange(f *testing.F) {
	seeds := []string{
		"bytes=0-499",
		"bytes=500-999",
		"bytes=-500",
		"bytes=9500-",
		"bytes=0-0",
		"bytes=-1",
		"bytes=0-0,-1",
		"bytes=500-600,601-999",
		"bytes= 0 - 999",
		"bytes=--5",
		"bytes=1-0",
		"bytes=99999999999999999999-",
		"unknown=0-1",
		"bytes=",
	}
	for _, s := range seeds {
		f.Add(s, int64(10000))
	}
	f.Fuzz(func(t *testing.T, value string, size int64) {
		if size < 0 {
			size = -size
		}
		br, err := ParseRange(value, size)
		if err != nil {
			if !errors.Is(err, ErrNoRange) && !errors.Is(err, ErrRangeUnsatisfiable) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if br.Start < 0 || br.Length <= 0 || br.Start+br.Length > size {
			t.Fatalf("ParseRange(%q, %d) = %+v out of bounds", value, size, br)
		}
		cr := ContentRange(br, size)
		if !strings.HasPrefix(cr, "bytes ") || strings.Contains(cr, "--") {
			t.Fatalf("malformed Content-Range %q", cr)
		}
	})
}
