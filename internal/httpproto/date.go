package httpproto

import (
	"time"
)

// HTTP date formats accepted by ParseHTTPDate, in preference order:
// RFC 1123 GMT (the required emit format), RFC 850, and asctime.
var httpDateLayouts = []string{
	"Mon, 02 Jan 2006 15:04:05 GMT",
	"Monday, 02-Jan-06 15:04:05 GMT",
	"Mon Jan _2 15:04:05 2006",
}

// FormatHTTPDate renders t as an RFC 1123 GMT HTTP date.
func FormatHTTPDate(t time.Time) string {
	return httpDate(t)
}

// ParseHTTPDate parses the three date formats HTTP/1.1 requires servers
// to accept (If-Modified-Since values). ok is false for anything else.
func ParseHTTPDate(s string) (time.Time, bool) {
	for _, layout := range httpDateLayouts {
		if t, err := time.Parse(layout, s); err == nil {
			return t, true
		}
	}
	return time.Time{}, false
}

// NotModifiedSince reports whether a resource with modification time
// modTime need not be re-sent to a client presenting the given
// If-Modified-Since header value. HTTP dates have one-second resolution,
// so modTime is truncated before comparison. An unparsable header means
// the resource must be sent.
func NotModifiedSince(headerValue string, modTime time.Time) bool {
	if headerValue == "" {
		return false
	}
	since, ok := ParseHTTPDate(headerValue)
	if !ok {
		return false
	}
	return !modTime.Truncate(time.Second).After(since)
}
