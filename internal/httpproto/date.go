package httpproto

import (
	"sync/atomic"
	"time"
)

// HTTP date formats accepted by ParseHTTPDate, in preference order:
// RFC 1123 GMT (the required emit format), RFC 850, and asctime.
var httpDateLayouts = []string{
	"Mon, 02 Jan 2006 15:04:05 GMT",
	"Monday, 02-Jan-06 15:04:05 GMT",
	"Mon Jan _2 15:04:05 2006",
}

// FormatHTTPDate renders t as an RFC 1123 GMT HTTP date.
func FormatHTTPDate(t time.Time) string {
	return httpDate(t)
}

// cachedDate is one formatted HTTP date, keyed by its absolute second.
// HTTP dates have one-second resolution, so any two times within the same
// second render identically.
type cachedDate struct {
	unix int64
	str  string
}

// dateNow caches the Date: header value; lastMod caches the most recent
// Last-Modified rendering (server traffic concentrates on a few hot files,
// so a single entry removes nearly every format call).
var (
	dateNow atomic.Pointer[cachedDate]
	lastMod atomic.Pointer[cachedDate]
)

// HTTPDateNow returns the RFC 1123 rendering of the current time. The
// string is reformatted at most about once per wall-clock second; between
// refreshes every response on the hot path shares one cached value instead
// of paying a time.Format per response.
func HTTPDateNow() string {
	now := time.Now()
	return cachedFormat(&dateNow, now.Unix(), now)
}

// FormatHTTPDateCached is FormatHTTPDate behind a single-entry cache, for
// repeated renderings of the same modification time (the Last-Modified of
// a hot cached file).
func FormatHTTPDateCached(t time.Time) string {
	return cachedFormat(&lastMod, t.Unix(), t)
}

func cachedFormat(slot *atomic.Pointer[cachedDate], sec int64, t time.Time) string {
	if c := slot.Load(); c != nil && c.unix == sec {
		return c.str
	}
	c := &cachedDate{unix: sec, str: httpDate(t)}
	slot.Store(c)
	return c.str
}

// ParseHTTPDate parses the three date formats HTTP/1.1 requires servers
// to accept (If-Modified-Since values). ok is false for anything else.
func ParseHTTPDate(s string) (time.Time, bool) {
	for _, layout := range httpDateLayouts {
		if t, err := time.Parse(layout, s); err == nil {
			return t, true
		}
	}
	return time.Time{}, false
}

// NotModifiedSince reports whether a resource with modification time
// modTime need not be re-sent to a client presenting the given
// If-Modified-Since header value. HTTP dates have one-second resolution,
// so modTime is truncated before comparison. An unparsable header means
// the resource must be sent.
func NotModifiedSince(headerValue string, modTime time.Time) bool {
	if headerValue == "" {
		return false
	}
	since, ok := ParseHTTPDate(headerValue)
	if !ok {
		return false
	}
	return !modTime.Truncate(time.Second).After(since)
}
