package httpproto

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimpleGet(t *testing.T) {
	raw := []byte("GET /index.html HTTP/1.1\r\nHost: example.com\r\nUser-Agent: test\r\n\r\n")
	req, n, err := ParseRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(raw) {
		t.Errorf("consumed %d of %d", n, len(raw))
	}
	if req.Method != "GET" || req.Path != "/index.html" || req.Proto != "HTTP/1.1" {
		t.Errorf("parsed %+v", req)
	}
	if req.Headers.Get("host") != "example.com" {
		t.Errorf("case-insensitive get failed: %q", req.Headers.Get("host"))
	}
	if !req.KeepAlive() {
		t.Error("HTTP/1.1 default should be keep-alive")
	}
}

func TestParseIncremental(t *testing.T) {
	full := "GET /a HTTP/1.1\r\nHost: x\r\n\r\n"
	for cut := 0; cut < len(full); cut++ {
		req, n, err := ParseRequest([]byte(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if req != nil || n != 0 {
			t.Fatalf("cut %d: premature parse (n=%d)", cut, n)
		}
	}
	req, n, err := ParseRequest([]byte(full))
	if err != nil || req == nil || n != len(full) {
		t.Fatalf("full parse failed: %v %v %d", req, err, n)
	}
}

func TestParsePipelined(t *testing.T) {
	raw := []byte("GET /1 HTTP/1.1\r\n\r\nGET /2 HTTP/1.1\r\n\r\n")
	req1, n1, err := ParseRequest(raw)
	if err != nil || req1.Path != "/1" {
		t.Fatalf("first: %v %v", req1, err)
	}
	req2, n2, err := ParseRequest(raw[n1:])
	if err != nil || req2.Path != "/2" {
		t.Fatalf("second: %v %v", req2, err)
	}
	if n1+n2 != len(raw) {
		t.Errorf("consumed %d+%d of %d", n1, n2, len(raw))
	}
}

func TestParseBody(t *testing.T) {
	raw := []byte("POST /submit HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
	req, n, err := ParseRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(raw) || string(req.Body) != "hello" {
		t.Errorf("body = %q n=%d", req.Body, n)
	}
	// Incomplete body: wait for more.
	req2, n2, err := ParseRequest(raw[:len(raw)-1])
	if err != nil || req2 != nil || n2 != 0 {
		t.Errorf("incomplete body: %v %d %v", req2, n2, err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		raw  string
		want error
	}{
		{"bad request line", "GARBAGE\r\n\r\n", ErrBadRequestLine},
		{"too many parts", "GET / HTTP/1.1 EXTRA\r\n\r\n", ErrBadRequestLine},
		{"bad version", "GET / HTTP/2.0\r\n\r\n", ErrBadVersion},
		{"relative target", "GET index.html HTTP/1.1\r\n\r\n", ErrBadRequestLine},
		{"bad method token", "GE T/ / HTTP/1.1\r\n\r\n", ErrBadRequestLine},
		{"header no colon", "GET / HTTP/1.1\r\nBadHeader\r\n\r\n", ErrBadHeader},
		{"header space in key", "GET / HTTP/1.1\r\nBad Key: v\r\n\r\n", ErrBadHeader},
		{"bad content length", "GET / HTTP/1.1\r\nContent-Length: xyz\r\n\r\n", ErrBadHeader},
		{"negative content length", "GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n", ErrBadHeader},
		{"huge body", fmt.Sprintf("GET / HTTP/1.1\r\nContent-Length: %d\r\n\r\n", MaxBodyBytes+1), ErrBodyTooLarge},
		{"bad escape", "GET /%zz HTTP/1.1\r\n\r\n", ErrBadPath},
		{"truncated escape", "GET /%4 HTTP/1.1\r\n\r\n", ErrBadPath},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ParseRequest([]byte(tc.raw))
			if !errors.Is(err, tc.want) {
				t.Errorf("got %v want %v", err, tc.want)
			}
		})
	}
}

func TestHeaderTooLarge(t *testing.T) {
	// No terminator and oversized: reject rather than buffer forever.
	big := []byte("GET / HTTP/1.1\r\nX: " + strings.Repeat("a", MaxHeaderBytes))
	if _, _, err := ParseRequest(big); !errors.Is(err, ErrHeaderTooLarge) {
		t.Errorf("unterminated oversize: %v", err)
	}
	// Terminated but oversized.
	big2 := []byte("GET / HTTP/1.1\r\nX: " + strings.Repeat("a", MaxHeaderBytes) + "\r\n\r\n")
	if _, _, err := ParseRequest(big2); !errors.Is(err, ErrHeaderTooLarge) {
		t.Errorf("terminated oversize: %v", err)
	}
}

func TestPercentDecodingAndQuery(t *testing.T) {
	raw := []byte("GET /a%20b/c.html?x=1&y=2 HTTP/1.1\r\n\r\n")
	req, _, err := ParseRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if req.Path != "/a b/c.html" {
		t.Errorf("Path = %q", req.Path)
	}
	if req.Query != "x=1&y=2" {
		t.Errorf("Query = %q", req.Query)
	}
	if req.Target != "/a%20b/c.html?x=1&y=2" {
		t.Errorf("Target = %q", req.Target)
	}
}

func TestKeepAliveSemantics(t *testing.T) {
	cases := []struct {
		proto, connection string
		want              bool
	}{
		{"HTTP/1.1", "", true},
		{"HTTP/1.1", "close", false},
		{"HTTP/1.1", "keep-alive", true},
		{"HTTP/1.0", "", false},
		{"HTTP/1.0", "keep-alive", true},
		{"HTTP/1.0", "close", false},
	}
	for _, tc := range cases {
		req := &Request{Proto: tc.proto, Headers: NewHeader()}
		if tc.connection != "" {
			req.Headers.Set("Connection", tc.connection)
		}
		if got := req.KeepAlive(); got != tc.want {
			t.Errorf("%s Connection=%q: keepalive=%v want %v", tc.proto, tc.connection, got, tc.want)
		}
	}
}

func TestCleanPathTraversal(t *testing.T) {
	cases := map[string]string{
		"/":                     "/",
		"/index.html":           "/index.html",
		"//a///b":               "/a/b",
		"/a/./b":                "/a/b",
		"/a/../b":               "/b",
		"/../../etc/passwd":     "/etc/passwd",
		"/a/b/../../../../x":    "/x",
		"/a/b/..":               "/a/",
		"/dir/":                 "/dir/",
		"/a/b/c/../../../../..": "/",
	}
	for in, want := range cases {
		if got := CleanPath(in); got != want {
			t.Errorf("CleanPath(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHeaderCanonicalization(t *testing.T) {
	h := NewHeader()
	h.Set("content-type", "a")
	h.Set("CONTENT-TYPE", "b")
	if h.Len() != 1 || h.Get("Content-Type") != "b" {
		t.Errorf("canonicalization failed: len=%d get=%q", h.Len(), h.Get("Content-Type"))
	}
	var order []string
	h.Set("X-Second", "2")
	h.Each(func(k, v string) { order = append(order, k) })
	if order[0] != "Content-Type" || order[1] != "X-Second" {
		t.Errorf("order = %v", order)
	}
	if h.Has("x-second") != true || h.Has("missing") {
		t.Error("Has wrong")
	}
}

func TestEncodeResponse(t *testing.T) {
	r := NewResponse(200, "text/html", []byte("<p>hi</p>"))
	out := string(EncodeResponse(r))
	for _, want := range []string{
		"HTTP/1.1 200 OK\r\n",
		"Content-Type: text/html\r\n",
		"Content-Length: 9\r\n",
		"Server: COPS-HTTP/1.0\r\n",
		"Date: ",
		"\r\n\r\n<p>hi</p>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Connection:") {
		t.Error("unexpected Connection header")
	}
}

func TestEncodeResponseClose(t *testing.T) {
	r := ErrorResponse(404, true)
	out := string(EncodeResponse(r))
	if !strings.Contains(out, "HTTP/1.1 404 Not Found\r\n") {
		t.Errorf("bad status line:\n%s", out)
	}
	if !strings.Contains(out, "Connection: close\r\n") {
		t.Error("missing Connection: close")
	}
	if !strings.Contains(out, "<h1>404 Not Found</h1>") {
		t.Error("missing error body")
	}
}

func TestStatusText(t *testing.T) {
	if StatusText(200) != "OK" || StatusText(503) != "Service Unavailable" {
		t.Error("known status text wrong")
	}
	if StatusText(299) != "Status 299" {
		t.Errorf("unknown status = %q", StatusText(299))
	}
}

func TestMimeTypes(t *testing.T) {
	cases := map[string]string{
		"/index.html":     "text/html",
		"/style.CSS":      "text/css",
		"/a/b/photo.jpeg": "image/jpeg",
		"/archive.tar":    "application/x-tar",
		"/noext":          "application/octet-stream",
		"/weird.xyz":      "application/octet-stream",
		"/dir.d/file":     "application/octet-stream",
	}
	for name, want := range cases {
		if got := MimeType(name); got != want {
			t.Errorf("MimeType(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestCodecAdapters(t *testing.T) {
	var c Codec
	req, n, err := c.Decode([]byte("GET /x HTTP/1.1\r\n\r\n"))
	if err != nil || n == 0 {
		t.Fatalf("decode: %v n=%d", err, n)
	}
	if req.(*Request).Path != "/x" {
		t.Errorf("decoded %+v", req)
	}
	if _, n, err := c.Decode([]byte("GET /x")); err != nil || n != 0 {
		t.Errorf("partial decode: n=%d err=%v", n, err)
	}
	if _, _, err := c.Decode([]byte("BAD\r\n\r\n")); err == nil {
		t.Error("bad request accepted")
	}
	out, err := c.Encode(NewResponse(204, "text/plain", nil))
	if err != nil || !bytes.Contains(out, []byte("204 No Content")) {
		t.Errorf("encode response: %v %q", err, out)
	}
	raw, err := c.Encode([]byte("rawbytes"))
	if err != nil || string(raw) != "rawbytes" {
		t.Errorf("encode raw: %v %q", err, raw)
	}
	if _, err := c.Encode(42); err == nil {
		t.Error("encoded unsupported type")
	}
}

// Property: any request the encoder-side can print is parsed back with
// identical method, path and headers (a build-then-parse round trip).
func TestQuickRequestRoundTrip(t *testing.T) {
	f := func(pathSeed []byte, nHeaders uint8, keepAlive bool) bool {
		// Build a safe path from the seed.
		var sb strings.Builder
		sb.WriteByte('/')
		for _, b := range pathSeed {
			c := 'a' + (b % 26)
			sb.WriteByte(c)
		}
		path := sb.String()
		var raw bytes.Buffer
		fmt.Fprintf(&raw, "GET %s HTTP/1.1\r\n", path)
		n := int(nHeaders % 8)
		for i := 0; i < n; i++ {
			fmt.Fprintf(&raw, "X-H%d: v%d\r\n", i, i)
		}
		if !keepAlive {
			raw.WriteString("Connection: close\r\n")
		}
		raw.WriteString("\r\n")
		req, consumed, err := ParseRequest(raw.Bytes())
		if err != nil || req == nil || consumed != raw.Len() {
			return false
		}
		if req.Method != "GET" || req.Path != path {
			return false
		}
		for i := 0; i < n; i++ {
			if req.Headers.Get(fmt.Sprintf("x-h%d", i)) != fmt.Sprintf("v%d", i) {
				return false
			}
		}
		return req.KeepAlive() == keepAlive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ParseRequest never panics and never over-consumes on
// arbitrary byte soup.
func TestQuickParserRobustness(t *testing.T) {
	f := func(junk []byte) bool {
		req, n, err := ParseRequest(junk)
		if n < 0 || n > len(junk) {
			return false
		}
		if err == nil && req != nil && n == 0 {
			return false // parsed a request but consumed nothing
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParseRequest(b *testing.B) {
	raw := []byte("GET /foo/bar/baz.html HTTP/1.1\r\nHost: example.com\r\nUser-Agent: bench/1.0\r\nAccept: */*\r\n\r\n")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := ParseRequest(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeResponse(b *testing.B) {
	body := make([]byte, 16<<10)
	r := NewResponse(200, "text/html", body)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeResponse(r)
	}
}
