package copshttp

import (
	"sync"

	"repro/internal/httpproto"
	"repro/internal/nserver"
)

// sequencer restores wire order to one connection's pipelined replies.
//
// The framework serializes Handle Request per connection, so requests
// claim sequence numbers in arrival order — but the serve path is
// asynchronous (stat and read hops complete on the reactive pool), so a
// synchronous reply (405, refusal, dynamic content) computed for request
// N+1 can be ready before request N's file completion. HTTP/1.1
// pipelining requires responses in request order (RFC 9112 §9.3.2), so
// every reply passes through here: the reply whose turn it is goes out on
// the zero-copy path and drags any parked successors with it; a reply
// ahead of its turn is rendered into an owned buffer and parked.
//
// The in-turn check costs a mutex acquire and an empty-map lookup per
// reply; nothing on the in-order path allocates (TestHotPathAllocs still
// pins the serve path).
type sequencer struct {
	mu      sync.Mutex
	claimed uint64 // next sequence number to hand out (claim order = request order)
	next    uint64 // sequence number allowed to write now
	closed  bool   // connection tore down; drop instead of parking
	pending map[uint64]*pendingReply

	// memoPath/memoFull cache the last fast-path resolution (request path
	// → filesystem path) so repeat requests for one hot document resolve
	// without allocating. Touched only by tryFastServe, which runs under
	// the connection's pipeline lock.
	memoPath string
	memoFull string
}

// pendingReply is one parked out-of-turn reply.
type pendingReply struct {
	// head is the owned, pre-rendered response head of a parked buffered
	// reply; body references the response body directly (cache bytes,
	// prebuilt error page, or handler-owned slice — never pooled), so
	// parking never copies the body. The same reference-retention
	// contract already backs the parked write path in nserver, which may
	// hold body slices until EPOLLOUT drains them.
	head  []byte
	body  []byte
	close bool
	// status/bytes/req/id replay the access-log record at flush time.
	status int
	bytes  int
	req    *httpproto.Request
	id     string
	// turn, when non-nil, marks a parked streaming (large-file) reply:
	// the flusher closes the channel when the turn arrives and the
	// streamer goroutine writes its own bytes and advances the sequence.
	// aborted (set before close) tells the streamer the connection died
	// first.
	turn    chan struct{}
	aborted bool
}

// sequencer returns the connection's reply sequencer, creating it on the
// first request (one allocation per connection, amortized across its
// pipelined requests).
func (s *Server) sequencer(c *nserver.Conn) *sequencer {
	if q, ok := c.UserData().(*sequencer); ok {
		return q
	}
	// handle runs under the per-connection pipeline lock, so first-request
	// creation cannot race another request of the same connection.
	q := &sequencer{pending: make(map[uint64]*pendingReply)}
	c.SetUserData(q)
	return q
}

// claim hands out the next reply turn; handle calls it before any
// asynchronous hop, so claim order is request order.
func (q *sequencer) claim() uint64 {
	q.mu.Lock()
	n := q.claimed
	q.claimed++
	q.mu.Unlock()
	return n
}

// tryFastClaim claims the next reply turn if and only if no earlier
// claim is outstanding: the caller then owns the write turn immediately
// (claim and turn coincide), which is what lets the fast path write
// inline without parking. It fails when any predecessor is still in its
// asynchronous hops — ordering then demands the queued path.
func (q *sequencer) tryFastClaim() bool {
	q.mu.Lock()
	if q.closed || q.claimed != q.next {
		q.mu.Unlock()
		return false
	}
	q.claimed++
	q.mu.Unlock()
	return true
}

// finishFastClaim advances the write turn after a fast-path reply went
// out, flushing any replies that parked behind it in the meantime
// (mirroring sendOrdered's in-turn tail).
func (q *sequencer) finishFastClaim(s *Server, c *nserver.Conn, err error) {
	closeNow := false
	q.mu.Lock()
	q.next++
	if !q.closed {
		q.flushLocked(s, c, &closeNow, err)
	}
	q.mu.Unlock()
	if closeNow {
		c.Close()
	}
}

// sendOrdered delivers one buffered reply in request order. r may be nil
// for replies to undecodable inputs.
func (s *Server) sendOrdered(c *nserver.Conn, q *sequencer, seq uint64, r *httpproto.Request, resp *httpproto.Response) {
	if r != nil {
		resp.Proto = r.Proto
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	if seq != q.next {
		// Ahead of turn: render the head into an owned buffer (the caller
		// releases the pooled resp after we return) and park; the body
		// rides along by reference.
		q.pending[seq] = &pendingReply{
			head:   httpproto.AppendResponseHead(nil, resp),
			body:   resp.Body,
			close:  resp.Close,
			status: resp.Status,
			bytes:  len(resp.Body),
			req:    r,
			id:     c.RequestID(),
		}
		q.mu.Unlock()
		return
	}
	q.mu.Unlock()
	// In turn: only the owner of q.next writes, and q.next does not
	// advance until it finishes, so the zero-copy write needs no lock.
	err := c.Reply(resp)
	s.logAccess(c, r, resp.Status, len(resp.Body), c.RequestID())
	closeNow := resp.Close
	q.mu.Lock()
	q.next++
	if !q.closed {
		q.flushLocked(s, c, &closeNow, err)
	}
	q.mu.Unlock()
	if closeNow {
		c.Close()
	}
}

// flushLocked drains contiguous parked replies following q.next. Called
// with q.mu held. closeNow accumulates Connection: close across flushed
// replies — once a closing reply goes out, nothing after it may be
// written; err suppresses further writes once a send failed (the failed
// send already tore the connection down).
func (q *sequencer) flushLocked(s *Server, c *nserver.Conn, closeNow *bool, err error) {
	for {
		p, ok := q.pending[q.next]
		if !ok {
			return
		}
		delete(q.pending, q.next)
		if p.turn != nil {
			// A parked streaming reply takes over from here: wake it (or
			// abort it when the connection is already closing) and let
			// its goroutine advance the sequence after streaming.
			if *closeNow || err != nil {
				p.aborted = true
			}
			close(p.turn)
			return
		}
		if !*closeNow && err == nil {
			err = c.SendBuffers(p.head, p.body)
			s.logAccess(c, p.req, p.status, p.bytes, p.id)
		}
		*closeNow = *closeNow || p.close
		q.next++
	}
}

// advanceAfterStream is the streaming reply's sequence advance: called
// after ReplyFile returns, it hands the turn to any parked successors.
func (q *sequencer) advanceAfterStream(s *Server, c *nserver.Conn, closeAfter bool, serr error) {
	q.mu.Lock()
	q.next++
	cn := closeAfter
	if !q.closed {
		q.flushLocked(s, c, &cn, serr)
	}
	q.mu.Unlock()
	// A streaming error already tore the connection down; only a clean
	// close-marked stream (or a closing flushed successor) needs it here.
	if serr == nil && cn {
		c.Close()
	}
}

// shutdown runs from the connection's OnClose hook: mark the sequencer
// dead, drop parked buffers, and wake parked streamers so their waiter
// goroutines (and open descriptors) never leak.
func (q *sequencer) shutdown() {
	q.mu.Lock()
	q.closed = true
	pend := q.pending
	q.pending = nil
	q.mu.Unlock()
	for _, p := range pend {
		if p.turn != nil {
			p.aborted = true
			close(p.turn)
		}
	}
}

// logAccess writes the O12 access-log record (common-log-style plus the
// trace ID, so a sampled "trace id=..." line and its access-log record
// can be joined).
func (s *Server) logAccess(c *nserver.Conn, r *httpproto.Request, status, bytes int, id string) {
	if lg := s.ns.Logger(); lg != nil && r != nil {
		lg.Infof("%s \"%s %s %s\" %d %d id=%s",
			c.RemoteAddr(), r.Method, r.Target, r.Proto, status, bytes, id)
	}
}
