package copshttp

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/nserver"
	"repro/internal/options"
)

// buildDocRoot creates a small site on disk.
func buildDocRoot(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"index.html":     "<html>home</html>",
		"about.txt":      "about text",
		"img/logo.png":   "PNGDATA",
		"sub/index.html": "<html>sub</html>",
		"portal/p1.html": strings.Repeat("P", 2048),
		"home/h1.html":   strings.Repeat("H", 2048),
	}
	for name, content := range files {
		full := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func startHTTP(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

// get issues one request on conn and parses status, headers and body.
func get(t *testing.T, conn net.Conn, r *bufio.Reader, method, path, extraHeaders string) (int, map[string]string, []byte) {
	t.Helper()
	fmt.Fprintf(conn, "%s %s HTTP/1.1\r\nHost: test\r\n%s\r\n", method, path, extraHeaders)
	status, headers, body, err := readResponse(r, method == "HEAD")
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	return status, headers, body
}

func readResponse(r *bufio.Reader, headOnly bool) (int, map[string]string, []byte, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return 0, nil, nil, err
	}
	parts := strings.SplitN(strings.TrimSpace(line), " ", 3)
	if len(parts) < 2 {
		return 0, nil, nil, fmt.Errorf("bad status line %q", line)
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, nil, nil, err
	}
	headers := map[string]string{}
	for {
		h, err := r.ReadString('\n')
		if err != nil {
			return 0, nil, nil, err
		}
		h = strings.TrimSpace(h)
		if h == "" {
			break
		}
		k, v, _ := strings.Cut(h, ":")
		headers[strings.ToLower(k)] = strings.TrimSpace(v)
	}
	n, _ := strconv.Atoi(headers["content-length"])
	var body []byte
	if !headOnly && n > 0 {
		body = make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return 0, nil, nil, err
		}
	}
	return status, headers, body, nil
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing docroot accepted")
	}
	if _, err := New(Config{DocRoot: "/no/such/dir"}); err == nil {
		t.Error("nonexistent docroot accepted")
	}
	bad := options.COPSHTTP()
	bad.DispatcherThreads = 3
	if _, err := New(Config{DocRoot: t.TempDir(), Options: &bad}); err == nil {
		t.Error("invalid options accepted")
	}
}

func TestServeStaticFiles(t *testing.T) {
	root := buildDocRoot(t)
	s := startHTTP(t, Config{DocRoot: root})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	status, headers, body := get(t, conn, r, "GET", "/about.txt", "")
	if status != 200 || string(body) != "about text" {
		t.Errorf("about.txt: %d %q", status, body)
	}
	if headers["content-type"] != "text/plain" {
		t.Errorf("content-type = %q", headers["content-type"])
	}

	// Persistent connection: next request on the same socket.
	status, headers, body = get(t, conn, r, "GET", "/img/logo.png", "")
	if status != 200 || string(body) != "PNGDATA" || headers["content-type"] != "image/png" {
		t.Errorf("logo.png: %d %q %q", status, body, headers["content-type"])
	}
}

func TestDirectoryServesIndex(t *testing.T) {
	root := buildDocRoot(t)
	s := startHTTP(t, Config{DocRoot: root})
	conn, _ := net.Dial("tcp", s.Addr())
	defer conn.Close()
	r := bufio.NewReader(conn)
	status, _, body := get(t, conn, r, "GET", "/", "")
	if status != 200 || string(body) != "<html>home</html>" {
		t.Errorf("root: %d %q", status, body)
	}
	status, _, body = get(t, conn, r, "GET", "/sub/", "")
	if status != 200 || string(body) != "<html>sub</html>" {
		t.Errorf("subdir: %d %q", status, body)
	}
	// Directory without trailing slash redirects to the slash form so
	// relative links inside the index page resolve against the directory.
	status, headers, _ := get(t, conn, r, "GET", "/sub", "")
	if status != 301 || headers["location"] != "/sub/" {
		t.Errorf("no-slash dir: %d location=%q", status, headers["location"])
	}
	// The query string is not echoed into the Location.
	status, headers, _ = get(t, conn, r, "GET", "/sub?x=1", "")
	if status != 301 || headers["location"] != "/sub/" {
		t.Errorf("no-slash dir with query: %d location=%q", status, headers["location"])
	}
	// Following the redirect serves the index.
	status, _, body = get(t, conn, r, "GET", "/sub/", "")
	if status != 200 || string(body) != "<html>sub</html>" {
		t.Errorf("redirect target: %d %q", status, body)
	}
}

func TestNotFoundAndMethodNotAllowed(t *testing.T) {
	root := buildDocRoot(t)
	s := startHTTP(t, Config{DocRoot: root})
	conn, _ := net.Dial("tcp", s.Addr())
	defer conn.Close()
	r := bufio.NewReader(conn)
	status, _, _ := get(t, conn, r, "GET", "/missing.html", "")
	if status != 404 {
		t.Errorf("missing: %d", status)
	}
	status, _, _ = get(t, conn, r, "DELETE", "/about.txt", "")
	if status != 405 {
		t.Errorf("DELETE: %d", status)
	}
}

func TestHeadOmitsBody(t *testing.T) {
	root := buildDocRoot(t)
	s := startHTTP(t, Config{DocRoot: root})
	conn, _ := net.Dial("tcp", s.Addr())
	defer conn.Close()
	r := bufio.NewReader(conn)
	status, headers, _ := get(t, conn, r, "HEAD", "/about.txt", "")
	if status != 200 {
		t.Fatalf("HEAD status %d", status)
	}
	if headers["content-length"] != "10" {
		t.Errorf("content-length = %q", headers["content-length"])
	}
	// The connection must have no body bytes pending: issue another
	// request and get a clean status line.
	status, _, body := get(t, conn, r, "GET", "/about.txt", "")
	if status != 200 || string(body) != "about text" {
		t.Errorf("request after HEAD broken: %d %q", status, body)
	}
}

func TestTraversalBlocked(t *testing.T) {
	root := buildDocRoot(t)
	// Plant a file outside the docroot.
	outside := filepath.Join(filepath.Dir(root), "secret.txt")
	if err := os.WriteFile(outside, []byte("secret"), 0o644); err != nil {
		t.Fatal(err)
	}
	defer os.Remove(outside)
	s := startHTTP(t, Config{DocRoot: root})
	// One connection per probe: paths with an encoded slash now fail in
	// decode, which tears the connection down without a reply — that
	// counts as blocked, but would wedge requests pipelined behind it.
	for _, path := range []string{
		"/../secret.txt",
		"/..%2Fsecret.txt",
		"/a/../../secret.txt",
		"/%2e%2e/secret.txt",
	} {
		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: t\r\n\r\n", path)
		status, _, body, err := readResponse(bufio.NewReader(conn), false)
		if err == nil && status == 200 && string(body) == "secret" {
			t.Errorf("traversal %q leaked the file", path)
		}
		conn.Close()
	}
}

func TestConnectionCloseSemantics(t *testing.T) {
	root := buildDocRoot(t)
	s := startHTTP(t, Config{DocRoot: root})
	// HTTP/1.0 without keep-alive: server closes after the reply.
	conn, _ := net.Dial("tcp", s.Addr())
	defer conn.Close()
	fmt.Fprintf(conn, "GET /about.txt HTTP/1.0\r\n\r\n")
	r := bufio.NewReader(conn)
	status, headers, _, err := readResponse(r, false)
	if err != nil || status != 200 {
		t.Fatalf("1.0 response: %d %v", status, err)
	}
	if headers["connection"] != "close" {
		t.Errorf("Connection header = %q", headers["connection"])
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := r.ReadByte(); err == nil {
		t.Error("connection stayed open after HTTP/1.0 reply")
	}
}

func TestCacheServesRepeatRequests(t *testing.T) {
	root := buildDocRoot(t)
	opts := options.COPSHTTP()
	opts.Profiling = true
	s := startHTTP(t, Config{DocRoot: root, Options: &opts})
	conn, _ := net.Dial("tcp", s.Addr())
	defer conn.Close()
	r := bufio.NewReader(conn)
	for i := 0; i < 4; i++ {
		status, _, body := get(t, conn, r, "GET", "/about.txt", "")
		if status != 200 || string(body) != "about text" {
			t.Fatalf("iteration %d: %d %q", i, status, body)
		}
	}
	snap := s.Framework().Profile().Snapshot()
	// Under the direct-dispatch sweep repeat requests are served from the
	// rendered-response cache and never reach the file cache, so the three
	// repeats split between file-cache hits (queued path) and direct
	// dispatches (fast path); without the sweep they are all file-cache hits.
	if snap.CacheMisses != 1 || snap.CacheHits+snap.DirectDispatched != 3 {
		t.Errorf("cache hits=%d misses=%d direct=%d", snap.CacheHits, snap.CacheMisses, snap.DirectDispatched)
	}
	if os.Getenv("NSERVER_DIRECT_DISPATCH") != "1" && snap.CacheHits != 3 {
		t.Errorf("cache hits=%d, want 3 without the direct-dispatch sweep", snap.CacheHits)
	}
}

func TestSpecWebLikeClientLoop(t *testing.T) {
	// The paper's workload: connect, issue 5 requests on the persistent
	// connection, disconnect — across several concurrent clients.
	root := buildDocRoot(t)
	s := startHTTP(t, Config{DocRoot: root})
	paths := []string{"/", "/about.txt", "/img/logo.png", "/portal/p1.html", "/home/h1.html"}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for cl := 0; cl < 16; cl++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", s.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for _, p := range paths {
				fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: t\r\n\r\n", p)
				status, _, _, err := readResponse(r, false)
				if err != nil || status != 200 {
					errs <- fmt.Errorf("%s: status=%d err=%v", p, status, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestPriorityHookClassifiesConnections(t *testing.T) {
	root := buildDocRoot(t)
	opts := options.COPSHTTP()
	sched := opts.WithScheduling(1, 8)
	prio := func(c *nserver.Conn) events.Priority {
		// Everything from loopback is "portal" (high priority) here; the
		// hook exists to prove wiring, Fig. 5 exercises the policy.
		return 0
	}
	s := startHTTP(t, Config{DocRoot: root, Options: &sched, Priority: prio})
	conn, _ := net.Dial("tcp", s.Addr())
	defer conn.Close()
	r := bufio.NewReader(conn)
	status, _, _ := get(t, conn, r, "GET", "/about.txt", "")
	if status != 200 {
		t.Errorf("scheduled server broken: %d", status)
	}
}

func TestDecodeDelayBurnsTime(t *testing.T) {
	root := buildDocRoot(t)
	s := startHTTP(t, Config{DocRoot: root, DecodeDelay: 30 * time.Millisecond})
	conn, _ := net.Dial("tcp", s.Addr())
	defer conn.Close()
	r := bufio.NewReader(conn)
	start := time.Now()
	status, _, _ := get(t, conn, r, "GET", "/about.txt", "")
	if status != 200 {
		t.Fatalf("status %d", status)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("decode delay not applied: %v", elapsed)
	}
}
