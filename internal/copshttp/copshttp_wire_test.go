package copshttp

import (
	"bufio"
	"io"
	"net"
	"testing"
	"time"
)

// dialWire opens a raw client connection to the server for byte-level
// wire tests.
func dialWire(t *testing.T, s *Server) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	return conn, bufio.NewReader(conn)
}

// expectEOF asserts the server closed the connection without sending
// further bytes.
func expectEOF(t *testing.T, r *bufio.Reader) {
	t.Helper()
	if b, err := r.ReadByte(); err != io.EOF {
		t.Fatalf("want EOF, got byte %q err %v", b, err)
	}
}

// TestWireTransferEncodingRefused pins the desync fix at the wire: a
// request announcing Transfer-Encoding gets 501 + Connection: close, and
// the chunked body bytes — which carry a smuggled request — are never
// parsed as a pipelined request.
func TestWireTransferEncodingRefused(t *testing.T) {
	s := startHTTP(t, Config{DocRoot: buildDocRoot(t)})
	conn, r := dialWire(t, s)

	smuggled := "GET /about.txt HTTP/1.1\r\n\r\n"
	if _, err := conn.Write([]byte(
		"POST /index.html HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n" +
			"1a\r\n" + smuggled + "\r\n0\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	status, headers, _, err := readResponse(r, false)
	if err != nil {
		t.Fatal(err)
	}
	if status != 501 {
		t.Fatalf("status = %d, want 501", status)
	}
	if headers["connection"] != "close" {
		t.Fatalf("Connection = %q, want close", headers["connection"])
	}
	// The smuggled GET must never be answered: the stream is poisoned and
	// the connection closes after the refusal.
	expectEOF(t, r)
}

// TestWireConflictingContentLengthTearsDown pins the smuggling defense at
// the wire: conflicting duplicate Content-Length headers are unrecoverable
// — no reply, no reuse, just a close (bad framing never gets a response
// that could mask where the stream desynced).
func TestWireConflictingContentLengthTearsDown(t *testing.T) {
	s := startHTTP(t, Config{DocRoot: buildDocRoot(t)})
	conn, r := dialWire(t, s)

	// CL:0 smuggle shape: if the parser last-won to 0, "hello" would be
	// parsed as the next request.
	if _, err := conn.Write([]byte(
		"POST /index.html HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 0\r\n\r\nhello")); err != nil {
		t.Fatal(err)
	}
	expectEOF(t, r)
}

// TestWireConnectionTokenList pins the RFC 9112 §9.6 fix at the wire for
// both protocol versions.
func TestWireConnectionTokenList(t *testing.T) {
	s := startHTTP(t, Config{DocRoot: buildDocRoot(t)})

	// HTTP/1.1 with "close, te": one response carrying Connection: close,
	// then EOF — the old single-token comparison kept this alive.
	conn, r := dialWire(t, s)
	if _, err := conn.Write([]byte("GET /about.txt HTTP/1.1\r\nConnection: close, te\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	status, headers, _, err := readResponse(r, false)
	if err != nil {
		t.Fatal(err)
	}
	if status != 200 || headers["connection"] != "close" {
		t.Fatalf("status %d connection %q, want 200 + close", status, headers["connection"])
	}
	expectEOF(t, r)

	// HTTP/1.0 with "keep-alive, upgrade" must persist: the old
	// whole-string comparison closed it after the first response.
	conn2, r2 := dialWire(t, s)
	if _, err := conn2.Write([]byte(
		"GET /about.txt HTTP/1.0\r\nConnection: keep-alive, upgrade\r\n\r\n" +
			"GET /about.txt HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		status, _, body, err := readResponse(r2, false)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if status != 200 || string(body) != "about text" {
			t.Fatalf("response %d: status %d body %q", i, status, body)
		}
	}
}

// TestWirePipelinedRepliesStayOrdered pins the reply sequencer: a
// synchronous 405 computed for the second pipelined request must not
// overtake the first request's asynchronous file completion. Many rounds
// of (async 200, sync 405, async 200) pairs make a pre-sequencer
// reordering all but certain while staying deterministic to check — the
// observed statuses must arrive exactly in request order every round.
func TestWirePipelinedRepliesStayOrdered(t *testing.T) {
	s := startHTTP(t, Config{DocRoot: buildDocRoot(t)})
	conn, r := dialWire(t, s)

	const rounds = 50
	for i := 0; i < rounds; i++ {
		if _, err := conn.Write([]byte(
			"GET /about.txt HTTP/1.1\r\n\r\n" +
				"DELETE /about.txt HTTP/1.1\r\n\r\n" +
				"GET /img/logo.png HTTP/1.1\r\n\r\n")); err != nil {
			t.Fatal(err)
		}
		want := []int{200, 405, 200}
		for j, w := range want {
			status, _, _, err := readResponse(r, false)
			if err != nil {
				t.Fatalf("round %d response %d: %v", i, j, err)
			}
			if status != w {
				t.Fatalf("round %d response %d: status %d, want %d (reply overtook the pipeline)", i, j, status, w)
			}
		}
	}
}
