package copshttp

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/options"
)

// ddOptions returns the COPS-HTTP preset with the run-to-completion fast
// path (and its event-driven substrate) selected.
func ddOptions() *options.Options {
	o := options.COPSHTTP()
	o.Profiling = true
	o.EventDriven = true
	o.DirectDispatch = true
	return &o
}

// startDD starts a direct-dispatch server, skipping on platforms where
// the kernel poller (and so the whole fast-path substrate) is absent.
func startDD(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := startHTTP(t, cfg)
	if !s.Framework().DirectDispatch() {
		t.Skip("direct dispatch inactive on this platform")
	}
	return s
}

func TestDirectDispatchServesHotGET(t *testing.T) {
	root := buildDocRoot(t)
	s := startDD(t, Config{DocRoot: root, Options: ddOptions()})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	for i := 0; i < 8; i++ {
		status, headers, body := get(t, conn, r, "GET", "/about.txt", "")
		if status != 200 || string(body) != "about text" {
			t.Fatalf("iteration %d: %d %q", i, status, body)
		}
		if headers["last-modified"] == "" || headers["date"] == "" {
			t.Fatalf("iteration %d: missing Last-Modified/Date: %v", i, headers)
		}
	}
	// The first request misses (and renders) the response cache; the
	// repeats must be served run-to-completion on the reactor goroutine.
	snap := s.Framework().Profile().Snapshot()
	if snap.DirectDispatched == 0 {
		t.Fatalf("DirectDispatched = 0 after hot repeats (snapshot %+v)", snap)
	}
	if rs := s.RespCache().Stats(); rs.Hits == 0 {
		t.Fatalf("respcache hits = 0 after hot repeats (stats %+v)", rs)
	}
}

func TestDirectDispatchPipelinedOrdering(t *testing.T) {
	root := buildDocRoot(t)
	s := startDD(t, Config{DocRoot: root, Options: ddOptions()})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	// Warm the rendered cache for the hot document.
	if status, _, _ := get(t, conn, r, "GET", "/about.txt", ""); status != 200 {
		t.Fatalf("warmup: %d", status)
	}
	// A pipelined burst interleaving cold documents (queued path, async
	// file hops) with the hot one (fast-path eligible): replies must come
	// back in request order even though the hot request could be answered
	// instantly — the sequencer makes the fast path decline while an
	// earlier claim is outstanding.
	paths := []string{"/portal/p1.html", "/about.txt", "/home/h1.html", "/about.txt", "/nosuch.txt", "/about.txt"}
	wantStatus := []int{200, 200, 200, 200, 404, 200}
	var req strings.Builder
	for _, p := range paths {
		fmt.Fprintf(&req, "GET %s HTTP/1.1\r\nHost: test\r\n\r\n", p)
	}
	if _, err := conn.Write([]byte(req.String())); err != nil {
		t.Fatal(err)
	}
	for i, p := range paths {
		status, _, body, err := readResponse(r, false)
		if err != nil {
			t.Fatalf("reply %d (%s): %v", i, p, err)
		}
		if status != wantStatus[i] {
			t.Fatalf("reply %d (%s): status %d, want %d", i, p, status, wantStatus[i])
		}
		if status == 200 {
			want := map[string]string{
				"/about.txt":      "about text",
				"/portal/p1.html": strings.Repeat("P", 2048),
				"/home/h1.html":   strings.Repeat("H", 2048),
			}[p]
			if string(body) != want {
				t.Fatalf("reply %d (%s): wrong body (%d bytes)", i, p, len(body))
			}
		}
	}
}

// TestDirectDispatchMutationInvalidates is the staleness bound: a file
// mutated between two GETs on one keep-alive connection must yield fresh
// bytes and a fresh Last-Modified on the second GET once the revalidate
// window has passed — the rendered entry and the file-cache bytes both
// drop when the stat hop sees the new (modTime, size).
func TestDirectDispatchMutationInvalidates(t *testing.T) {
	root := buildDocRoot(t)
	s := startDD(t, Config{DocRoot: root, Options: ddOptions()})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	status, h1, body := get(t, conn, r, "GET", "/about.txt", "")
	if status != 200 || string(body) != "about text" {
		t.Fatalf("first GET: %d %q", status, body)
	}
	full := filepath.Join(root, "about.txt")
	if err := os.WriteFile(full, []byte("fresh content"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Force a distinct mtime even on coarse-granularity filesystems.
	mt := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(full, mt, mt); err != nil {
		t.Fatal(err)
	}
	// Let the rendered entry outlive its revalidate window so the next
	// request is forced through the stat hop.
	time.Sleep(250 * time.Millisecond)
	status, h2, body := get(t, conn, r, "GET", "/about.txt", "")
	if status != 200 || string(body) != "fresh content" {
		t.Fatalf("post-mutation GET: %d %q", status, body)
	}
	if h1["last-modified"] == h2["last-modified"] {
		t.Fatalf("Last-Modified did not change across mutation: %q", h2["last-modified"])
	}
	if inv := s.RespCache().Stats().Invalidations; inv == 0 {
		t.Fatalf("no respcache invalidation recorded (stats %+v)", s.RespCache().Stats())
	}
}

// TestDirectDispatchWireShape compares the fast path's replies against a
// plain server's for the same request mix: statuses, bodies and the
// contract headers must be identical (Date may differ by the second it
// was rendered in).
func TestDirectDispatchWireShape(t *testing.T) {
	root := buildDocRoot(t)
	plainOpts := options.COPSHTTP()
	plainOpts.Profiling = true
	plain := startHTTP(t, Config{DocRoot: root, Options: &plainOpts})
	fast := startDD(t, Config{DocRoot: root, Options: ddOptions()})

	type reply struct {
		status  int
		headers map[string]string
		body    string
	}
	collect := func(s *Server) []reply {
		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		var out []reply
		reqs := []struct{ method, path, extra string }{
			{"GET", "/about.txt", ""},
			{"GET", "/about.txt", ""}, // hot repeat: fast path on the DD server
			{"HEAD", "/about.txt", ""},
			{"GET", "/about.txt", "Range: bytes=0-4\r\n"},
			{"GET", "/nosuch.txt", ""},
			{"GET", "/about.txt", ""},
		}
		for _, q := range reqs {
			status, headers, body := get(t, conn, r, q.method, q.path, q.extra)
			out = append(out, reply{status, headers, string(body)})
		}
		return out
	}
	want, got := collect(plain), collect(fast)
	for i := range want {
		if got[i].status != want[i].status || got[i].body != want[i].body {
			t.Fatalf("reply %d: got %d %q, want %d %q", i, got[i].status, got[i].body, want[i].status, want[i].body)
		}
		for _, h := range []string{"content-length", "content-type", "last-modified", "accept-ranges", "content-range", "connection"} {
			if got[i].headers[h] != want[i].headers[h] {
				t.Fatalf("reply %d header %s: got %q, want %q", i, h, got[i].headers[h], want[i].headers[h])
			}
		}
	}
}
