package copshttp

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/options"
)

// TestPipelinedRepliesNotDelayed is the TCP_NODELAY wire test: the server
// sets TCP_NODELAY on every accepted connection, so a burst of pipelined
// requests must stream back without Nagle/delayed-ACK coalescing stalls.
// With Nagle active each small reply segment can wait ~40ms for the
// peer's delayed ACK; 50 pipelined replies would then take two seconds.
// The budget below fails long before that.
func TestPipelinedRepliesNotDelayed(t *testing.T) {
	root := buildDocRoot(t)
	s := startHTTP(t, Config{DocRoot: root})

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const pipelined = 50
	var req strings.Builder
	for i := 0; i < pipelined; i++ {
		req.WriteString("GET /about.txt HTTP/1.1\r\nHost: test\r\n\r\n")
	}
	start := time.Now()
	if _, err := conn.Write([]byte(req.String())); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	for i := 0; i < pipelined; i++ {
		status, _, body, err := readResponse(r, false)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if status != 200 || string(body) != "about text" {
			t.Fatalf("reply %d: status %d body %q", i, status, body)
		}
	}
	if elapsed := time.Since(start); elapsed > 1500*time.Millisecond {
		t.Errorf("%d pipelined replies took %v — looks like Nagle coalescing delay", pipelined, elapsed)
	}
}

// TestShardedServeCorrectness runs the full HTTP pipeline with four
// runtime shards: every concurrent client must get correct replies, the
// connections must land on the shards, and the aggregated profile must
// account for every request regardless of which shard served it.
func TestShardedServeCorrectness(t *testing.T) {
	root := buildDocRoot(t)
	opts := options.COPSHTTP()
	opts.Profiling = true
	opts = opts.WithShards(4)
	s := startHTTP(t, Config{DocRoot: root, Options: &opts})

	fw := s.Framework()
	if got := fw.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}

	const clients = 16
	const reqsPerClient = 5
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", s.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for i := 0; i < reqsPerClient; i++ {
				fmt.Fprintf(conn, "GET /index.html HTTP/1.1\r\nHost: test\r\n\r\n")
				conn.SetReadDeadline(time.Now().Add(10 * time.Second))
				status, _, body, err := readResponse(r, false)
				if err != nil {
					errs <- fmt.Errorf("request %d: %w", i, err)
					return
				}
				if status != 200 || string(body) != "<html>home</html>" {
					errs <- fmt.Errorf("request %d: status %d body %q", i, status, body)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The aggregated profile must see every request; the per-shard
	// snapshots must sum to the aggregate.
	snap := fw.Profile().Snapshot()
	if snap.RequestsServed != clients*reqsPerClient {
		t.Errorf("aggregated RequestsServed = %d, want %d", snap.RequestsServed, clients*reqsPerClient)
	}
	var perShard uint64
	for _, ss := range fw.Profile().ShardSnapshots() {
		perShard += ss.RequestsServed
	}
	if perShard != snap.RequestsServed {
		t.Errorf("per-shard RequestsServed sum %d != aggregate %d", perShard, snap.RequestsServed)
	}
}
