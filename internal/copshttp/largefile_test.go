package copshttp

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/httpproto"
	"repro/internal/options"
)

// largePattern builds a deterministic non-repeating byte pattern so a
// mis-sliced range or a swapped chunk cannot pass the equality checks.
func largePattern(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*7 + i>>8 + 13)
	}
	return data
}

// startLargeHTTP serves a docroot with a small streaming threshold and a
// big patterned file, with profiling on so the streaming counters tick.
func startLargeHTTP(t *testing.T, threshold int64, fileSize int) (*Server, []byte) {
	t.Helper()
	root := buildDocRoot(t)
	data := largePattern(fileSize)
	if err := os.WriteFile(filepath.Join(root, "big.bin"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	opts := options.COPSHTTP().WithLargeFiles(threshold)
	opts.Profiling = true
	s := startHTTP(t, Config{DocRoot: root, Options: &opts})
	return s, data
}

func TestLargeFileStreamed(t *testing.T) {
	// 256 KiB + 3: odd size so the last chunk is partial.
	s, data := startLargeHTTP(t, 64<<10, 256<<10+3)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	status, headers, body := get(t, conn, r, "GET", "/big.bin", "")
	if status != 200 {
		t.Fatalf("GET big.bin: %d", status)
	}
	if headers["content-length"] != strconv.Itoa(len(data)) {
		t.Errorf("content-length = %q, want %d", headers["content-length"], len(data))
	}
	if headers["accept-ranges"] != "bytes" {
		t.Errorf("accept-ranges = %q", headers["accept-ranges"])
	}
	if !bytes.Equal(body, data) {
		t.Error("streamed body differs from the file")
	}

	// The connection stays persistent and clean after a streamed reply.
	status, _, small := get(t, conn, r, "GET", "/about.txt", "")
	if status != 200 || string(small) != "about text" {
		t.Errorf("request after streamed reply: %d %q", status, small)
	}

	snap := s.Framework().Profile().Snapshot()
	if snap.BytesStreamed != uint64(len(data)) {
		t.Errorf("BytesStreamed = %d, want %d", snap.BytesStreamed, len(data))
	}
	if snap.SendfileChunks+snap.FallbackChunks == 0 {
		t.Error("no streaming chunks counted")
	}

	// Streamed files must never enter the cache.
	if c := s.Framework().Cache(); c != nil {
		if _, ok := c.Get(filepath.Join(s.docroot, "big.bin")); ok {
			t.Error("large file was admitted to the cache")
		}
	}
}

func TestLargeFileHead(t *testing.T) {
	s, data := startLargeHTTP(t, 64<<10, 128<<10)
	conn, _ := net.Dial("tcp", s.Addr())
	defer conn.Close()
	r := bufio.NewReader(conn)

	status, headers, _ := get(t, conn, r, "HEAD", "/big.bin", "")
	if status != 200 {
		t.Fatalf("HEAD big.bin: %d", status)
	}
	if headers["content-length"] != strconv.Itoa(len(data)) {
		t.Errorf("content-length = %q, want %d", headers["content-length"], len(data))
	}
	// No body bytes may be pending: the next reply must parse cleanly.
	status, _, body := get(t, conn, r, "GET", "/about.txt", "")
	if status != 200 || string(body) != "about text" {
		t.Errorf("request after HEAD: %d %q", status, body)
	}
	if streamed := s.Framework().Profile().Snapshot().BytesStreamed; streamed != 0 {
		t.Errorf("HEAD streamed %d body bytes", streamed)
	}
}

// TestRangeMatrix drives the Range interaction matrix over both serve
// paths: the buffered (cache) path for a small file and the streaming
// path for a file above the threshold.
func TestRangeMatrix(t *testing.T) {
	const size = 128 << 10
	s, data := startLargeHTTP(t, 64<<10, size)
	small := []byte("about text") // 10 bytes, served buffered

	for _, tc := range []struct {
		name, path, hdr string
		wantStatus      int
		wantRange       string // expected Content-Range
		wantBody        []byte
	}{
		{"small first bytes", "/about.txt", "Range: bytes=0-4\r\n", 206, "bytes 0-4/10", small[:5]},
		{"small middle", "/about.txt", "Range: bytes=2-5\r\n", 206, "bytes 2-5/10", small[2:6]},
		{"small open ended", "/about.txt", "Range: bytes=6-\r\n", 206, "bytes 6-9/10", small[6:]},
		{"small suffix", "/about.txt", "Range: bytes=-4\r\n", 206, "bytes 6-9/10", small[6:]},
		{"small clamped", "/about.txt", "Range: bytes=5-999\r\n", 206, "bytes 5-9/10", small[5:]},
		{"small unsatisfiable", "/about.txt", "Range: bytes=10-\r\n", 416, "bytes */10", nil},
		{"small multi ignored", "/about.txt", "Range: bytes=0-1,3-4\r\n", 200, "", small},
		{"small foreign unit", "/about.txt", "Range: lines=0-1\r\n", 200, "", small},
		{"small malformed", "/about.txt", "Range: bytes=abc\r\n", 200, "", small},
		{"large middle", "/big.bin", fmt.Sprintf("Range: bytes=%d-%d\r\n", size/2, size/2+999), 206,
			fmt.Sprintf("bytes %d-%d/%d", size/2, size/2+999, size), data[size/2 : size/2+1000]},
		{"large suffix", "/big.bin", "Range: bytes=-1000\r\n", 206,
			fmt.Sprintf("bytes %d-%d/%d", size-1000, size-1, size), data[size-1000:]},
		{"large unsatisfiable", "/big.bin", fmt.Sprintf("Range: bytes=%d-\r\n", size), 416,
			fmt.Sprintf("bytes */%d", size), nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			conn, err := net.Dial("tcp", s.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			status, headers, body := get(t, conn, r, "GET", tc.path, tc.hdr)
			if status != tc.wantStatus {
				t.Fatalf("status = %d, want %d", status, tc.wantStatus)
			}
			if headers["content-range"] != tc.wantRange {
				t.Errorf("content-range = %q, want %q", headers["content-range"], tc.wantRange)
			}
			if tc.wantBody != nil && !bytes.Equal(body, tc.wantBody) {
				t.Errorf("body mismatch: got %d bytes, want %d", len(body), len(tc.wantBody))
			}
		})
	}
}

func TestConditionalBeatsRange(t *testing.T) {
	s, _ := startLargeHTTP(t, 64<<10, 128<<10)
	conn, _ := net.Dial("tcp", s.Addr())
	defer conn.Close()
	r := bufio.NewReader(conn)

	// Learn the file's Last-Modified.
	_, headers, _ := get(t, conn, r, "HEAD", "/big.bin", "")
	lm := headers["last-modified"]
	if lm == "" {
		t.Fatal("no Last-Modified")
	}
	// If-Modified-Since wins: 304, the Range is not evaluated.
	status, headers, _ := get(t, conn, r, "GET", "/big.bin",
		"If-Modified-Since: "+lm+"\r\nRange: bytes=0-9\r\n")
	if status != 304 {
		t.Fatalf("conditional+range: %d, want 304", status)
	}
	if headers["content-range"] != "" {
		t.Errorf("304 carries Content-Range %q", headers["content-range"])
	}
	// Same for an unsatisfiable range: the 304 still wins over the 416.
	status, _, _ = get(t, conn, r, "GET", "/big.bin",
		"If-Modified-Since: "+lm+"\r\nRange: bytes=999999999-\r\n")
	if status != 304 {
		t.Errorf("conditional+bad range: %d, want 304", status)
	}
}

func TestHeadRangeHeadersOnly(t *testing.T) {
	s, data := startLargeHTTP(t, 64<<10, 128<<10)
	conn, _ := net.Dial("tcp", s.Addr())
	defer conn.Close()
	r := bufio.NewReader(conn)

	status, headers, _ := get(t, conn, r, "HEAD", "/big.bin", "Range: bytes=100-199\r\n")
	if status != 206 {
		t.Fatalf("HEAD+Range: %d, want 206", status)
	}
	if headers["content-range"] != fmt.Sprintf("bytes 100-199/%d", len(data)) {
		t.Errorf("content-range = %q", headers["content-range"])
	}
	if headers["content-length"] != "100" {
		t.Errorf("content-length = %q, want 100", headers["content-length"])
	}
	// Headers only: the next request must parse cleanly.
	status, _, body := get(t, conn, r, "GET", "/about.txt", "")
	if status != 200 || string(body) != "about text" {
		t.Errorf("request after HEAD+Range: %d %q", status, body)
	}
}

// rawExchange sends one HTTP/1.0 request and returns every byte the
// server sends before closing the connection.
func rawExchange(t *testing.T, addr, method, path string) []byte {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "%s %s HTTP/1.0\r\n\r\n", method, path)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	raw, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestHeadErrorWireEquality pins the HEAD error contract at the byte
// level: for the same error, the HEAD reply is exactly the GET reply
// minus the body — same status line, same headers, same Content-Length.
func TestHeadErrorWireEquality(t *testing.T) {
	root := buildDocRoot(t)
	s := startHTTP(t, Config{DocRoot: root})
	for _, path := range []string{"/missing.html", "/no/such/dir/"} {
		getRaw := rawExchange(t, s.Addr(), "GET", path)
		headRaw := rawExchange(t, s.Addr(), "HEAD", path)
		page := httpproto.ErrorPage(404)
		want := append(append([]byte(nil), headRaw...), page...)
		if !bytes.Equal(getRaw, want) {
			t.Errorf("%s: GET reply is not HEAD reply + body\nGET:  %q\nHEAD: %q", path, getRaw, headRaw)
		}
		if !bytes.Contains(headRaw, []byte("Content-Length: "+strconv.Itoa(len(page)))) {
			t.Errorf("%s: HEAD error lacks the GET Content-Length: %q", path, headRaw)
		}
	}
	// 405 takes the same contract through a different error site.
	getRaw := rawExchange(t, s.Addr(), "DELETE", "/about.txt")
	if !bytes.Contains(getRaw, []byte("405")) {
		t.Errorf("DELETE: %q", getRaw)
	}
}

func TestRangeCounters(t *testing.T) {
	s, _ := startLargeHTTP(t, 64<<10, 128<<10)
	conn, _ := net.Dial("tcp", s.Addr())
	defer conn.Close()
	r := bufio.NewReader(conn)
	get(t, conn, r, "GET", "/big.bin", "Range: bytes=0-99\r\n")
	get(t, conn, r, "GET", "/about.txt", "Range: bytes=0-4\r\n")
	if status, _, _ := get(t, conn, r, "GET", "/about.txt", "Range: bytes=99-\r\n"); status != 416 {
		t.Fatalf("expected 416, got %d", status)
	}
	snap := s.Framework().Profile().Snapshot()
	if snap.Responses206 != 2 {
		t.Errorf("Responses206 = %d, want 2", snap.Responses206)
	}
	if snap.Responses416 != 1 {
		t.Errorf("Responses416 = %d, want 1", snap.Responses416)
	}
}
