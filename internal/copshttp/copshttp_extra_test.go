package copshttp

import (
	"bufio"
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/httpproto"
	"repro/internal/logging"
	"repro/internal/options"
)

func TestAddrBeforeStart(t *testing.T) {
	s, err := New(Config{DocRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() != "" {
		t.Errorf("Addr before start = %q", s.Addr())
	}
	if s.Framework() == nil {
		t.Error("Framework nil")
	}
}

func TestHeadOnMissingFile(t *testing.T) {
	s := startHTTP(t, Config{DocRoot: buildDocRoot(t)})
	conn, _ := net.Dial("tcp", s.Addr())
	defer conn.Close()
	r := bufio.NewReader(conn)
	status, _, _ := get(t, conn, r, "HEAD", "/ghost.html", "")
	if status != 404 {
		t.Errorf("HEAD missing = %d", status)
	}
}

func TestPermissionDenied(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("running as root: permission bits are not enforced")
	}
	root := buildDocRoot(t)
	locked := filepath.Join(root, "locked.txt")
	if err := os.WriteFile(locked, []byte("x"), 0o000); err != nil {
		t.Fatal(err)
	}
	s := startHTTP(t, Config{DocRoot: root})
	conn, _ := net.Dial("tcp", s.Addr())
	defer conn.Close()
	r := bufio.NewReader(conn)
	status, _, _ := get(t, conn, r, "GET", "/locked.txt", "")
	if status != 403 {
		t.Errorf("permission-denied file = %d", status)
	}
}

func TestDirectoryWithoutIndexIs404(t *testing.T) {
	root := buildDocRoot(t)
	if err := os.MkdirAll(filepath.Join(root, "empty"), 0o755); err != nil {
		t.Fatal(err)
	}
	s := startHTTP(t, Config{DocRoot: root})
	conn, _ := net.Dial("tcp", s.Addr())
	defer conn.Close()
	r := bufio.NewReader(conn)
	status, _, _ := get(t, conn, r, "GET", "/empty/", "")
	if status != 404 {
		t.Errorf("dir without index = %d", status)
	}
}

func TestCustomIndexFile(t *testing.T) {
	root := buildDocRoot(t)
	if err := os.WriteFile(filepath.Join(root, "home.htm"), []byte("custom index"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := startHTTP(t, Config{DocRoot: root, IndexFile: "home.htm"})
	conn, _ := net.Dial("tcp", s.Addr())
	defer conn.Close()
	r := bufio.NewReader(conn)
	status, _, body := get(t, conn, r, "GET", "/", "")
	if status != 200 || string(body) != "custom index" {
		t.Errorf("custom index: %d %q", status, body)
	}
}

func TestBadRequestClosesConnection(t *testing.T) {
	s := startHTTP(t, Config{DocRoot: buildDocRoot(t)})
	conn, _ := net.Dial("tcp", s.Addr())
	defer conn.Close()
	if _, err := conn.Write([]byte("TOTAL GARBAGE\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	// The decode error tears the connection down.
	buf := make([]byte, 256)
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}

func TestNoCacheConfiguration(t *testing.T) {
	opts := options.COPSHTTP()
	opts.Cache = options.NoCache
	opts.CacheCapacity = 0
	opts.FileIOThreads = 0
	s := startHTTP(t, Config{DocRoot: buildDocRoot(t), Options: &opts})
	if s.Framework().Cache() != nil {
		t.Error("cache exists with O6 off")
	}
	conn, _ := net.Dial("tcp", s.Addr())
	defer conn.Close()
	r := bufio.NewReader(conn)
	status, _, body := get(t, conn, r, "GET", "/about.txt", "")
	if status != 200 || string(body) != "about text" {
		t.Errorf("no-cache serving broken: %d %q", status, body)
	}
}

func TestAllCachePoliciesServe(t *testing.T) {
	for _, policy := range []options.CachePolicy{
		options.LFU, options.LRUMin, options.LRUThreshold, options.HyperG,
	} {
		opts := options.COPSHTTP()
		opts.Cache = policy
		opts.CacheThreshold = 64 << 10
		s := startHTTP(t, Config{DocRoot: buildDocRoot(t), Options: &opts})
		conn, _ := net.Dial("tcp", s.Addr())
		r := bufio.NewReader(conn)
		status, _, _ := get(t, conn, r, "GET", "/about.txt", "")
		conn.Close()
		if status != 200 {
			t.Errorf("policy %v: status %d", policy, status)
		}
	}
}

func TestConditionalGetReturns304(t *testing.T) {
	root := buildDocRoot(t)
	s := startHTTP(t, Config{DocRoot: root})
	conn, _ := net.Dial("tcp", s.Addr())
	defer conn.Close()
	r := bufio.NewReader(conn)

	// First GET: 200 with Last-Modified.
	status, headers, body := get(t, conn, r, "GET", "/about.txt", "")
	if status != 200 || string(body) != "about text" {
		t.Fatalf("first GET: %d %q", status, body)
	}
	lm := headers["last-modified"]
	if lm == "" {
		t.Fatal("Last-Modified missing")
	}
	// Conditional GET with that timestamp: 304, no body.
	status, headers, body = get(t, conn, r, "GET", "/about.txt",
		"If-Modified-Since: "+lm+"\r\n")
	if status != 304 {
		t.Fatalf("conditional GET: %d", status)
	}
	if len(body) != 0 || headers["content-length"] != "0" {
		t.Errorf("304 carried a body: %q (cl=%s)", body, headers["content-length"])
	}
	// A stale timestamp gets the full file again.
	status, _, body = get(t, conn, r, "GET", "/about.txt",
		"If-Modified-Since: Mon, 01 Jan 1990 00:00:00 GMT\r\n")
	if status != 200 || string(body) != "about text" {
		t.Errorf("stale conditional: %d %q", status, body)
	}
	// Garbage dates are ignored.
	status, _, _ = get(t, conn, r, "GET", "/about.txt",
		"If-Modified-Since: not a date\r\n")
	if status != 200 {
		t.Errorf("garbage IMS: %d", status)
	}
}

func TestDynamicContentHandlers(t *testing.T) {
	root := buildDocRoot(t)
	// Written by handler goroutines, read by the test goroutine; the
	// response round-trips order the accesses in real time but TCP is
	// not a synchronization edge, so the counter must be atomic.
	var hits atomic.Int64
	s := startHTTP(t, Config{
		DocRoot: root,
		Dynamic: map[string]DynamicHandler{
			"/api/": func(req *httpproto.Request) *httpproto.Response {
				hits.Add(1)
				return httpproto.NewResponse(200, "application/json",
					[]byte(`{"path":"`+req.Path+`","query":"`+req.Query+`"}`))
			},
			"/api/teapot": func(req *httpproto.Request) *httpproto.Response {
				return httpproto.NewResponse(418, "text/plain", []byte("teapot"))
			},
			"/boom/": func(req *httpproto.Request) *httpproto.Response {
				panic("handler exploded")
			},
			"/nil/": func(req *httpproto.Request) *httpproto.Response {
				return nil
			},
		},
	})
	conn, _ := net.Dial("tcp", s.Addr())
	defer conn.Close()
	r := bufio.NewReader(conn)

	// Dynamic endpoint with query string; POST allowed for dynamic paths.
	status, headers, body := get(t, conn, r, "GET", "/api/users?id=7", "")
	if status != 200 || !strings.Contains(string(body), `"query":"id=7"`) {
		t.Errorf("dynamic GET: %d %q", status, body)
	}
	if headers["content-type"] != "application/json" {
		t.Errorf("content-type = %q", headers["content-type"])
	}
	// Longest prefix wins.
	status, _, body = get(t, conn, r, "GET", "/api/teapot", "")
	if status != 418 || string(body) != "teapot" {
		t.Errorf("longest prefix: %d %q", status, body)
	}
	// Static paths still serve files.
	status, _, body = get(t, conn, r, "GET", "/about.txt", "")
	if status != 200 || string(body) != "about text" {
		t.Errorf("static alongside dynamic: %d %q", status, body)
	}
	// nil response means 404.
	status, _, _ = get(t, conn, r, "GET", "/nil/x", "")
	if status != 404 {
		t.Errorf("nil handler: %d", status)
	}
	if n := hits.Load(); n != 1 {
		t.Errorf("api hits = %d", n)
	}
	// A panicking handler returns 500 and closes only that connection.
	status, _, _ = get(t, conn, r, "GET", "/boom/now", "")
	if status != 500 {
		t.Errorf("panic handler: %d", status)
	}
	conn2, _ := net.Dial("tcp", s.Addr())
	defer conn2.Close()
	r2 := bufio.NewReader(conn2)
	if status, _, _ := get(t, conn2, r2, "GET", "/about.txt", ""); status != 200 {
		t.Errorf("server broken after dynamic panic: %d", status)
	}
}

func TestDynamicHandlerHead(t *testing.T) {
	s := startHTTP(t, Config{
		DocRoot: buildDocRoot(t),
		Dynamic: map[string]DynamicHandler{
			"/api/": func(req *httpproto.Request) *httpproto.Response {
				return httpproto.NewResponse(200, "text/plain", []byte("dynamic body"))
			},
		},
	})
	conn, _ := net.Dial("tcp", s.Addr())
	defer conn.Close()
	r := bufio.NewReader(conn)
	status, headers, _ := get(t, conn, r, "HEAD", "/api/x", "")
	if status != 200 || headers["content-length"] != "12" {
		t.Errorf("dynamic HEAD: %d cl=%s", status, headers["content-length"])
	}
	// No body pending: next request parses cleanly.
	if status, _, _ := get(t, conn, r, "GET", "/about.txt", ""); status != 200 {
		t.Errorf("after dynamic HEAD: %d", status)
	}
}

// lockedBuffer is a goroutine-safe log sink: the server writes records
// after it has already replied, so the test must synchronize reads.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestAccessLogging(t *testing.T) {
	opts := options.COPSHTTP()
	opts.Logging = true
	var buf lockedBuffer
	s := startHTTP(t, Config{
		DocRoot:   buildDocRoot(t),
		Options:   &opts,
		AccessLog: logging.NewLogger(&buf, logging.LevelInfo),
	})
	conn, _ := net.Dial("tcp", s.Addr())
	defer conn.Close()
	r := bufio.NewReader(conn)
	get(t, conn, r, "GET", "/about.txt", "")
	get(t, conn, r, "GET", "/missing", "")
	deadline := time.After(2 * time.Second)
	for {
		out := buf.String()
		if strings.Contains(out, `"GET /about.txt HTTP/1.1" 200 10`) &&
			strings.Contains(out, `"GET /missing HTTP/1.1" 404`) {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("access log incomplete:\n%s", out)
		case <-time.After(time.Millisecond):
		}
	}
}

func TestNoAccessLogWhenO12Off(t *testing.T) {
	var buf lockedBuffer
	s := startHTTP(t, Config{
		DocRoot:   buildDocRoot(t),
		AccessLog: logging.NewLogger(&buf, logging.LevelInfo),
	})
	conn, _ := net.Dial("tcp", s.Addr())
	defer conn.Close()
	r := bufio.NewReader(conn)
	get(t, conn, r, "GET", "/about.txt", "")
	time.Sleep(20 * time.Millisecond)
	if out := buf.String(); out != "" {
		t.Errorf("access log written with O12 off:\n%s", out)
	}
}
