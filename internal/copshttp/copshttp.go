// Package copshttp is COPS-HTTP: the paper's high-performance static Web
// server built on the N-Server framework. It corresponds to the 785 NCSS
// of "other application code" in Table 4 — everything else (concurrency,
// dispatch, caching, overload control) comes from the framework, and the
// request grammar comes from internal/httpproto.
//
// The server handles static page requests: GET and HEAD with HTTP/1.0-1.1
// persistent connections. File content is fetched through the framework's
// emulated asynchronous file I/O (asynchronous completion events, per
// COPS-HTTP's O4 setting) and cached under the configured replacement
// policy (LRU in the paper's experiments).
package copshttp

import (
	"errors"
	"fmt"
	"io/fs"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/events"
	"repro/internal/httpproto"
	"repro/internal/logging"
	"repro/internal/nserver"
	"repro/internal/options"
	"repro/internal/respcache"
)

// Config configures a COPS-HTTP server.
type Config struct {
	// DocRoot is the directory served. Required.
	DocRoot string
	// Options is the template option assignment; zero value means the
	// paper's COPS-HTTP preset (options.COPSHTTP()).
	Options *options.Options
	// Priority assigns connection priorities when O8 is on (the ISP
	// experiment's 13-line hook classifies by client IP).
	Priority nserver.PriorityFunc
	// IndexFile is served for directory requests. Default "index.html".
	IndexFile string
	// DecodeDelay, when positive, burns the configured duration in the
	// Decode Request step — the paper's third experiment makes the
	// workload CPU-bound by sleeping 50ms while decoding.
	DecodeDelay time.Duration
	// Dynamic maps path prefixes to dynamic-content handlers, the
	// extension the paper notes ("the same pattern can be used to
	// generate a server for dynamic content, except that more
	// application-dependent code would be required"). The longest
	// matching prefix wins; unmatched paths serve static files.
	Dynamic map[string]DynamicHandler
	// Trace receives the debug trace in Debug mode.
	Trace *logging.Trace
	// AccessLog receives one record per completed request when the
	// logging option (O12) is selected in Options.
	AccessLog *logging.Logger
	// GatePollInterval tunes the overload gate poll (tests/experiments).
	GatePollInterval time.Duration
	// ShedOnOverload switches option O9's behavior from postponing to
	// load shedding: while the overload gate is paused (or the MaxConns
	// bound is hit), new connections are accepted and answered with a
	// prebuilt "503 Service Unavailable" carrying a Retry-After header —
	// served from pooled buffers, bounded by the write timeout — instead
	// of queueing in the listen backlog. Saturation then surfaces to
	// clients as a fast explicit refusal they can back off from.
	ShedOnOverload bool
	// RetryAfter is the Retry-After delay stamped on shed 503 replies
	// (rounded up to whole seconds). Zero means 1 second. When the
	// adaptive limiter (Options.AdaptiveShed) is on, shed replies derive
	// Retry-After from the limiter's live backoff horizon instead and
	// this value is only the fallback.
	RetryAfter time.Duration
	// ShedPriority classifies a raw connection for the adaptive
	// limiter's priority-aware shedding (Options.AdaptiveShed): it maps
	// the transport to an O8 priority level before any request has been
	// read — so from transport facts such as the peer address — and
	// level-0 connections keep flowing while lower priorities shed. Nil
	// marks every connection fully sheddable.
	ShedPriority func(net.Conn) events.Priority
	// Codec overrides the wire codec (the Decode Request / Encode Reply
	// hooks); nil means the httpproto codec. The model-based conformance
	// harness (internal/model) injects historical parser behavior here to
	// replay fixed wire bugs against an otherwise identical server.
	Codec nserver.Codec
}

// DynamicHandler computes one response for a dynamic-content request. It
// runs on an Event Processor worker; it must not block indefinitely.
type DynamicHandler func(req *httpproto.Request) *httpproto.Response

// Server is a running COPS-HTTP instance.
type Server struct {
	ns        *nserver.Server
	docroot   string
	indexFile string
	dynamic   map[string]DynamicHandler
	// retryAfter is the precomputed Retry-After header value for shed
	// 503s; shedTimeout bounds the write of a shed reply.
	retryAfter  string
	shedTimeout time.Duration
	shedCount   atomic.Uint64
	// largeFile is the streaming threshold: files of at least this many
	// bytes skip the cache/read hop and stream from an open descriptor.
	// 0 disables the large-file path.
	largeFile int64
	// rcache is the rendered-response cache (nil when no file-cache
	// policy is selected): pre-encoded head+body pairs for cacheable GETs.
	// It backs the run-to-completion fast path (Options.DirectDispatch),
	// and — independently of that option — its (modTime, size) metadata
	// lets the stat hop detect and drop stale file-cache bytes, so a
	// mutated file is never served from the old cached revision past the
	// revalidate window.
	rcache *respcache.Cache
}

// connState carries one in-flight request through the asynchronous stat
// and read hops (the Asynchronous Completion Token's state).
type connState struct {
	conn *nserver.Conn
	req  *httpproto.Request
	// q and seq are the connection's reply sequencer and this request's
	// claimed reply turn (pipelined responses leave in request order).
	q   *sequencer
	seq uint64
	// full is the resolved filesystem path being served.
	full string
	// modTime and size are the file's metadata from the stat hop.
	modTime time.Time
	size    int64
	// ranged records a satisfiable single byte range parsed from the
	// request; the serve hop turns it into a 206.
	ranged bool
	rng    httpproto.ByteRange
}

// New assembles a COPS-HTTP server.
func New(cfg Config) (*Server, error) {
	if cfg.DocRoot == "" {
		return nil, errors.New("copshttp: DocRoot required")
	}
	root, err := filepath.Abs(cfg.DocRoot)
	if err != nil {
		return nil, err
	}
	if fi, err := os.Stat(root); err != nil || !fi.IsDir() {
		return nil, fmt.Errorf("copshttp: DocRoot %q is not a directory", root)
	}
	opts := options.COPSHTTP()
	if cfg.Options != nil {
		opts = *cfg.Options
	}
	idx := cfg.IndexFile
	if idx == "" {
		idx = "index.html"
	}
	s := &Server{docroot: root, indexFile: idx, dynamic: cfg.Dynamic, largeFile: opts.LargeFileThreshold}
	s.retryAfter = strconv.FormatInt(ceilSeconds(cfg.RetryAfter), 10)
	s.shedTimeout = opts.WriteTimeout
	if s.shedTimeout <= 0 {
		s.shedTimeout = time.Second
	}
	var shed func(net.Conn)
	if cfg.ShedOnOverload {
		shed = s.shed
	}
	// The rendered-response cache exists whenever the file cache does: its
	// stat-confirmation metadata fixes the stale-cached-bytes window in
	// every mode, and under DirectDispatch it is the fast path's lookup
	// table. Without a file cache every read hits disk fresh, so there is
	// nothing to confirm and nothing worth pre-rendering.
	var onRemove func(string)
	if opts.Cache != options.NoCache {
		s.rcache = respcache.New(runtime.GOMAXPROCS(0), 0)
		onRemove = s.rcache.Invalidate
	}

	var codec nserver.Codec = httpproto.Codec{}
	if cfg.Codec != nil {
		codec = cfg.Codec
	}
	if cfg.DecodeDelay > 0 {
		codec = delayCodec{inner: codec, delay: cfg.DecodeDelay}
	}
	nscfg := nserver.Config{
		Options:          opts,
		App:              nserver.AppFuncs{Request: s.handle, Close: s.connClosed},
		Codec:            codec,
		Priority:         cfg.Priority,
		Trace:            cfg.Trace,
		Logger:           cfg.AccessLog,
		GatePollInterval: cfg.GatePollInterval,
		Shed:             shed,
		ShedPriority:     cfg.ShedPriority,
		CacheOnRemove:    onRemove,
	}
	if s.rcache != nil {
		// The hook is wired unconditionally; the framework only calls it
		// when DirectDispatch (and its whole substrate) is active.
		nscfg.FastPath = s.tryFastServe
	}
	ns, err := nserver.New(nscfg)
	if err != nil {
		return nil, err
	}
	s.ns = ns
	return s, nil
}

// Framework returns the underlying N-Server (profiling, cache, shutdown).
func (s *Server) Framework() *nserver.Server { return s.ns }

// RespCache returns the rendered-response cache backing the
// run-to-completion fast path (nil when no file-cache policy is
// selected). Metrics endpoints scrape its counters.
func (s *Server) RespCache() *respcache.Cache { return s.rcache }

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error { return s.ns.ListenAndServe(addr) }

// Shutdown stops the server.
func (s *Server) Shutdown() { s.ns.Shutdown() }

// Addr returns the bound address once serving.
func (s *Server) Addr() string {
	if a := s.ns.Addr(); a != nil {
		return a.String()
	}
	return ""
}

// Shed returns how many connections were answered with the load-shedding
// 503 fast path since the server started.
func (s *Server) Shed() uint64 { return s.shedCount.Load() }

// ceilSeconds renders a Retry-After delay as whole seconds, rounding up
// and clamping to at least 1: RFC 9110's Retry-After takes non-negative
// integer seconds, and a shed reply advertising "Retry-After: 0" would
// invite an immediate retry storm — exactly what shedding exists to
// damp. Zero and negative delays take the 1-second default.
func ceilSeconds(d time.Duration) int64 {
	if d <= 0 {
		return 1
	}
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// shed is the load-shedding fast path run for connections accepted while
// the overload gate is paused. It bypasses the five-step pipeline
// entirely: a pooled Response carrying the shared prebuilt 503 page and a
// Retry-After header is rendered into a pooled head buffer and written
// with one writev, bounded by the write timeout, then the connection is
// closed. With the static gate nothing here allocates per shed beyond the
// kernel's accept; under the adaptive limiter the Retry-After value is
// derived from the limiter's live backoff horizon (longer overloads
// advertise longer backoffs), costing one small header-value render.
func (s *Server) shed(conn net.Conn) {
	s.shedCount.Add(1)
	_ = conn.SetWriteDeadline(time.Now().Add(s.shedTimeout))
	ra := s.retryAfter
	if l := s.ns.Admission(); l != nil {
		ra = strconv.FormatInt(ceilSeconds(l.RetryAfter()), 10)
	}
	resp := httpproto.AcquireResponse()
	resp.Status = 503
	resp.Close = true
	resp.Body = httpproto.ErrorPage(503)
	resp.Headers.Set("Content-Type", "text/html")
	resp.Headers.Set("Retry-After", ra)
	n, _ := httpproto.WriteResponse(conn, resp)
	// The shed reply bypasses Conn.Send, so it must count its own egress
	// for the O11 byte totals (every egress path counts exactly once).
	// Sheds happen before a Communicator (and shard) exists, so they
	// land on the group's global profile.
	s.ns.Profile().Global().BytesSent(int(n))
	httpproto.ReleaseResponse(resp)
	_ = conn.Close()
}

// handle is the Handle Request hook: validate, resolve the path under the
// document root, then run the event-driven file pipeline — an
// asynchronous stat hop (directory resolution and If-Modified-Since),
// then an asynchronous read hop — and reply from the completions.
func (s *Server) handle(c *nserver.Conn, req any) {
	r, ok := req.(*httpproto.Request)
	if !ok {
		_ = c.Reply(httpproto.ErrorResponse(500, true))
		c.Close()
		return
	}
	// Claim this request's reply turn before any asynchronous hop: the
	// framework serializes Handle per connection, so claim order is
	// request order, and every reply path below goes out through the
	// sequencer in exactly that order — a synchronous 405 computed for
	// request N+1 can no longer overtake request N's file completion on
	// a pipelined connection.
	q := s.sequencer(c)
	seq := q.claim()
	if r.Refuse != 0 {
		// The parser answered but could not frame the body (unsupported
		// Transfer-Encoding): reply with the refusal status and close —
		// the rest of the stream is poisoned.
		s.errorReply(c, r, q, seq, r.Refuse, true)
		return
	}
	if h := s.lookupDynamic(r.Path); h != nil {
		s.serveDynamic(c, r, q, seq, h)
		return
	}
	if r.Method != "GET" && r.Method != "HEAD" {
		s.errorReply(c, r, q, seq, 405, !r.KeepAlive())
		return
	}
	full, err := s.resolve(r.Path)
	if err != nil {
		s.errorReply(c, r, q, seq, 403, !r.KeepAlive())
		return
	}
	st := &connState{conn: c, req: r, q: q, seq: seq, full: full}
	if _, err := s.ns.AIO().Stat(full, st, c.Priority(), s.statDone); err != nil {
		s.errorReply(c, r, q, seq, 503, true)
		c.Close()
	}
}

// tryFastServe is the FastPath hook behind Options.DirectDispatch:
// called inline from the reactor goroutine for each request decoded
// during a direct-mode drain. It serves exactly the shape the
// rendered-response cache holds — a keep-alive HTTP/1.1 GET for a
// static path, no Range, no conditional — and only when the reply
// sequencer has no earlier claim outstanding, so a pipelined response
// can never overtake a predecessor still in the stat/read hops.
// Everything else is declined untouched and takes the queued path,
// which keeps admission control observing every queue wait the fast
// path did not elide.
func (s *Server) tryFastServe(c *nserver.Conn, req any) bool {
	r, ok := req.(*httpproto.Request)
	if !ok || r.Refuse != 0 || r.Method != "GET" || r.Proto != "HTTP/1.1" || !r.KeepAlive() {
		return false
	}
	if r.Headers.Get("Range") != "" || r.Headers.Get("If-Modified-Since") != "" {
		return false
	}
	if s.dynamic != nil && s.lookupDynamic(r.Path) != nil {
		return false
	}
	// Path resolution allocates (filepath.Join); the per-connection memo
	// makes repeat requests for the same document — the hot-URL shape the
	// fast path exists for — allocation-free. The memo fields are only
	// touched here, under the connection's pipeline lock.
	q := s.sequencer(c)
	full := q.memoFull
	if r.Path != q.memoPath {
		var err error
		if full, err = s.resolve(r.Path); err != nil {
			return false
		}
		q.memoPath, q.memoFull = r.Path, full
	}
	head, body, ok := s.rcache.Lookup(full)
	if !ok {
		return false
	}
	if !q.tryFastClaim() {
		return false
	}
	c.BeginRequest()
	err := c.SendBuffers(head, body)
	s.logAccess(c, r, 200, len(body), c.RequestID())
	q.finishFastClaim(s, c, err)
	return true
}

// connClosed is the OnClose hook: tear down the reply sequencer so parked
// buffers are dropped and parked streamers never leak.
func (s *Server) connClosed(c *nserver.Conn, _ error) {
	if q, ok := c.UserData().(*sequencer); ok {
		q.shutdown()
	}
}

// errorReply sends a canned error page. A HEAD reply strips the body but
// keeps the Content-Length a GET would have carried, so the two methods
// are wire-identical up to the body (RFC 9110 §9.3.2).
func (s *Server) errorReply(c *nserver.Conn, r *httpproto.Request, q *sequencer, seq uint64, status int, close bool) {
	page := httpproto.ErrorPage(status)
	resp := httpproto.AcquireResponse()
	resp.Status = status
	resp.Close = close
	resp.Headers.Set("Content-Type", "text/html")
	if r != nil && r.Method == "HEAD" {
		resp.Headers.Set("Content-Length", strconv.Itoa(len(page)))
	} else {
		resp.Body = page
	}
	s.reply(c, r, q, seq, resp)
	httpproto.ReleaseResponse(resp)
}

// redirectDir answers a directory request that lacks its trailing slash
// with a 301 to the slash form (the usual static-server semantics, so
// relative links inside the index page resolve). The Location echoes the
// raw request target — query string stripped, never the decoded path, so
// percent-escapes survive and no decoded byte can reach the header.
func (s *Server) redirectDir(c *nserver.Conn, st *connState) {
	r := st.req
	loc, _, _ := strings.Cut(r.Target, "?")
	page := httpproto.ErrorPage(301)
	resp := httpproto.AcquireResponse()
	resp.Status = 301
	resp.Close = !r.KeepAlive()
	resp.Headers.Set("Location", loc+"/")
	resp.Headers.Set("Content-Type", "text/html")
	if r.Method == "HEAD" {
		resp.Headers.Set("Content-Length", strconv.Itoa(len(page)))
	} else {
		resp.Body = page
	}
	s.reply(c, r, st.q, st.seq, resp)
	httpproto.ReleaseResponse(resp)
}

// statDone is the completion handler of the stat hop: it redirects bare
// directory requests to their slash form, answers conditional requests
// with 304, evaluates the Range header against the now-known size, and
// otherwise issues the serve hop — a buffered read through the cache, or
// a descriptor open for files at or above the large-file threshold.
func (s *Server) statDone(tok events.Token, info os.FileInfo, err error) {
	st := tok.State.(*connState)
	c, r := st.conn, st.req
	if err != nil {
		status := 404
		if errors.Is(err, fs.ErrPermission) {
			status = 403
		}
		s.errorReply(c, r, st.q, st.seq, status, !r.KeepAlive())
		return
	}
	if info.IsDir() {
		// A trailing-slash path already resolved to the index file, so a
		// directory here means the slash is missing.
		s.redirectDir(c, st)
		return
	}
	st.modTime = info.ModTime()
	st.size = info.Size()
	// Reconcile the rendered-response cache against this fresh stat. A
	// mismatch proves the cached revision is outdated: the rendered entry
	// is dropped by Confirm, and the file-cache bytes it was built from
	// are dropped here — so the read hop below re-reads the file instead
	// of serving the old revision under a fresh Last-Modified. A match
	// restarts the entry's revalidate window, keeping the fast path warm
	// for another window without its own stat.
	if s.rcache != nil && s.rcache.Confirm(st.full, st.modTime, st.size) {
		if fc := s.ns.Cache(); fc != nil {
			fc.Remove(st.full)
		}
	}
	// If-Modified-Since wins over Range: a 304 carries no representation,
	// so there is nothing for the range to select from (RFC 9110 §13.2.2
	// evaluation order).
	if httpproto.NotModifiedSince(r.Headers.Get("If-Modified-Since"), st.modTime) {
		resp := httpproto.AcquireResponse()
		resp.Status = 304
		resp.Headers.Set("Last-Modified", httpproto.FormatHTTPDateCached(st.modTime))
		resp.Close = !r.KeepAlive()
		s.reply(c, r, st.q, st.seq, resp)
		httpproto.ReleaseResponse(resp)
		return
	}
	if raw := r.Headers.Get("Range"); raw != "" {
		rng, rerr := httpproto.ParseRange(raw, st.size)
		switch {
		case rerr == nil:
			st.ranged, st.rng = true, rng
		case errors.Is(rerr, httpproto.ErrRangeUnsatisfiable):
			// 416 settles here, before any file I/O is queued.
			c.Profile().RangeUnsatisfiable()
			page := httpproto.ErrorPage(416)
			resp := httpproto.AcquireResponse()
			resp.Status = 416
			resp.Close = !r.KeepAlive()
			resp.Headers.Set("Content-Range", httpproto.ContentRangeUnsatisfiable(st.size))
			resp.Headers.Set("Content-Type", "text/html")
			if r.Method == "HEAD" {
				resp.Headers.Set("Content-Length", strconv.Itoa(len(page)))
			} else {
				resp.Body = page
			}
			s.reply(c, r, st.q, st.seq, resp)
			httpproto.ReleaseResponse(resp)
			return
		default:
			// Multi-range, foreign units, malformed specs: ignore the
			// header and serve the full representation (RFC 9110 §14.2).
		}
	}
	if s.largeFile > 0 && st.size >= s.largeFile {
		if _, err := s.ns.AIO().Open(st.full, st, c.Priority(), s.openDone); err != nil {
			s.errorReply(c, r, st.q, st.seq, 503, true)
			c.Close()
		}
		return
	}
	if _, err := s.ns.AIO().ReadFile(st.full, st, c.Priority(), s.fileDone); err != nil {
		s.errorReply(c, r, st.q, st.seq, 503, true)
		c.Close()
	}
}

// fileDone is the Completion Handler: it runs when the emulated
// asynchronous read finishes (on the reactive pool for asynchronous
// completions) and performs the Encode Reply / Send Reply steps.
func (s *Server) fileDone(tok events.Token, data []byte, err error) {
	st := tok.State.(*connState)
	c, r := st.conn, st.req
	if err != nil {
		status := 404
		if errors.Is(err, fs.ErrPermission) {
			status = 403
		}
		s.errorReply(c, r, st.q, st.seq, status, !r.KeepAlive())
		return
	}
	// The cached-file fast path: a pooled Response carries the cache's
	// shared bytes straight to the writev send, so serving a hit performs
	// no per-request allocation beyond the framework's fixed costs
	// (TestHotPathAllocs pins this).
	resp := httpproto.AcquireResponse()
	resp.Status = 200
	resp.Headers.Set("Content-Type", httpproto.MimeType(st.full))
	resp.Headers.Set("Accept-Ranges", "bytes")
	body := data
	// The range was validated against the stat size; re-check against the
	// bytes actually read (the file may have changed in between, or the
	// cache may hold an older revision) and fall back to the full body if
	// the slice no longer fits.
	if st.ranged && st.rng.Start+st.rng.Length <= int64(len(data)) {
		resp.Status = 206
		resp.Headers.Set("Content-Range", httpproto.ContentRange(st.rng, int64(len(data))))
		body = data[st.rng.Start : st.rng.Start+st.rng.Length]
		c.Profile().RangeServed()
	}
	resp.Body = body
	if !st.modTime.IsZero() {
		resp.Headers.Set("Last-Modified", httpproto.FormatHTTPDateCached(st.modTime))
	}
	// Populate the rendered-response cache for the cacheable shape the
	// fast path serves: a plain 200 to a keep-alive HTTP/1.1 GET. The
	// head is rendered once here, on the miss path; the stored (modTime,
	// size) pair came from the same stat hop that just Confirmed (or
	// seeded) this revision, so a later stat catches any divergence.
	if s.rcache != nil && resp.Status == 200 && r.Method == "GET" &&
		r.Proto == "HTTP/1.1" && r.KeepAlive() && !st.modTime.IsZero() {
		resp.Proto = r.Proto
		s.rcache.Store(st.full, httpproto.AppendResponseHead(nil, resp), body, st.modTime, st.size)
	}
	if r.Method == "HEAD" {
		resp.Headers.Set("Content-Length", strconv.Itoa(len(body)))
		resp.Body = nil
	}
	resp.Close = !r.KeepAlive()
	s.reply(c, r, st.q, st.seq, resp)
	httpproto.ReleaseResponse(resp)
}

// openDone is the large-file Completion Handler: it receives the open
// descriptor from the File Open Event and streams the body — sendfile(2)
// on Linux TCP transports, pooled copy elsewhere — without ever holding
// the file in memory. The descriptor is owned here and always closed.
func (s *Server) openDone(tok events.Token, f *os.File, info os.FileInfo, err error) {
	st := tok.State.(*connState)
	c, r := st.conn, st.req
	if err != nil {
		status := 404
		if errors.Is(err, fs.ErrPermission) {
			status = 403
		}
		s.errorReply(c, r, st.q, st.seq, status, !r.KeepAlive())
		return
	}
	// Serve what is open now: the stat hop's size may be stale, and the
	// advertised Content-Length must match the descriptor being streamed.
	size := info.Size()
	offset, length := int64(0), size
	resp := httpproto.AcquireResponse()
	resp.Status = 200
	resp.Proto = r.Proto
	resp.Close = !r.KeepAlive()
	resp.Headers.Set("Content-Type", httpproto.MimeType(st.full))
	resp.Headers.Set("Accept-Ranges", "bytes")
	if !st.modTime.IsZero() {
		resp.Headers.Set("Last-Modified", httpproto.FormatHTTPDateCached(st.modTime))
	}
	if st.ranged && st.rng.Start+st.rng.Length <= size {
		resp.Status = 206
		resp.Headers.Set("Content-Range", httpproto.ContentRange(st.rng, size))
		offset, length = st.rng.Start, st.rng.Length
		c.Profile().RangeServed()
	}
	// The codec sees no in-memory body, so the streamed length must be
	// advertised explicitly.
	resp.Headers.Set("Content-Length", strconv.FormatInt(length, 10))
	if r.Method == "HEAD" {
		f.Close()
		s.reply(c, r, st.q, st.seq, resp)
		httpproto.ReleaseResponse(resp)
		return
	}
	// A stream cannot be parked as rendered bytes, so an out-of-turn
	// streaming reply hands descriptor, response and turn to a waiter
	// goroutine instead of blocking this completion worker; the flusher
	// wakes it when its turn arrives, and shutdown aborts it if the
	// connection dies first (the descriptor never leaks).
	q := st.q
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		f.Close()
		httpproto.ReleaseResponse(resp)
		return
	}
	if st.seq != q.next {
		p := &pendingReply{turn: make(chan struct{})}
		q.pending[st.seq] = p
		q.mu.Unlock()
		go func() {
			<-p.turn
			if p.aborted {
				f.Close()
				httpproto.ReleaseResponse(resp)
				return
			}
			s.streamFile(c, st, resp, f, offset, length)
		}()
		return
	}
	q.mu.Unlock()
	s.streamFile(c, st, resp, f, offset, length)
}

// streamFile writes one in-turn streaming reply — sendfile(2) on Linux
// TCP transports, pooled copy elsewhere — then advances the reply
// sequence. It owns and closes f and releases resp.
func (s *Server) streamFile(c *nserver.Conn, st *connState, resp *httpproto.Response, f *os.File, offset, length int64) {
	r := st.req
	closeAfter := resp.Close
	status := resp.Status
	serr := c.ReplyFile(resp, f, offset, length)
	f.Close()
	httpproto.ReleaseResponse(resp)
	s.logAccess(c, r, status, int(length), c.RequestID())
	st.q.advanceAfterStream(s, c, closeAfter, serr)
}

// lookupDynamic returns the handler with the longest matching path
// prefix (nil when the path is static).
func (s *Server) lookupDynamic(path string) DynamicHandler {
	var best DynamicHandler
	bestLen := -1
	for prefix, h := range s.dynamic {
		if len(prefix) > bestLen && strings.HasPrefix(path, prefix) {
			best = h
			bestLen = len(prefix)
		}
	}
	return best
}

// serveDynamic runs a dynamic-content handler with panic isolation.
func (s *Server) serveDynamic(c *nserver.Conn, r *httpproto.Request, q *sequencer, seq uint64, h DynamicHandler) {
	resp := func() (resp *httpproto.Response) {
		defer func() {
			if rec := recover(); rec != nil {
				resp = httpproto.ErrorResponse(500, true)
			}
		}()
		return h(r)
	}()
	if resp == nil {
		resp = httpproto.ErrorResponse(404, !r.KeepAlive())
	}
	if !resp.Close {
		resp.Close = !r.KeepAlive()
	}
	if r.Method == "HEAD" {
		resp.Headers.Set("Content-Length", strconv.Itoa(len(resp.Body)))
		resp.Body = nil
	}
	s.reply(c, r, q, seq, resp)
}

// reply sends the response through the connection's reply sequencer,
// which writes the access-log record (O12) and closes non-persistent
// connections once the reply (and any parked predecessors) are out.
func (s *Server) reply(c *nserver.Conn, r *httpproto.Request, q *sequencer, seq uint64, resp *httpproto.Response) {
	s.sendOrdered(c, q, seq, r, resp)
}

// resolve maps a cleaned request path to a file under the document root.
// Directory resolution happens in the asynchronous stat hop, so no
// blocking filesystem call occurs here.
func (s *Server) resolve(reqPath string) (string, error) {
	p := httpproto.CleanPath(reqPath)
	if strings.HasSuffix(p, "/") {
		p += s.indexFile
	}
	full := filepath.Join(s.docroot, filepath.FromSlash(p))
	// CleanPath cannot escape the root, but keep the invariant explicit.
	if full != s.docroot && !strings.HasPrefix(full, s.docroot+string(filepath.Separator)) {
		return "", errors.New("copshttp: path escapes document root")
	}
	return full, nil
}

// delayCodec wraps a codec with the CPU-burn of the overload experiment.
type delayCodec struct {
	inner nserver.Codec
	delay time.Duration
}

// Decode sleeps for the configured delay before decoding, making request
// decoding CPU-bound as in the paper's third experiment.
func (d delayCodec) Decode(buf []byte) (any, int, error) {
	req, n, err := d.inner.Decode(buf)
	if req != nil {
		time.Sleep(d.delay)
	}
	return req, n, err
}

// Encode delegates to the wrapped codec.
func (d delayCodec) Encode(reply any) ([]byte, error) { return d.inner.Encode(reply) }

// AppendHead preserves the inner codec's zero-copy path (the delay applies
// only to decoding).
func (d delayCodec) AppendHead(dst []byte, reply any) (head, body []byte, err error) {
	if be, ok := d.inner.(nserver.BufferEncoder); ok {
		return be.AppendHead(dst, reply)
	}
	data, err := d.inner.Encode(reply)
	if err != nil {
		return nil, nil, err
	}
	return dst, data, nil
}
