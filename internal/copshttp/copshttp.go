// Package copshttp is COPS-HTTP: the paper's high-performance static Web
// server built on the N-Server framework. It corresponds to the 785 NCSS
// of "other application code" in Table 4 — everything else (concurrency,
// dispatch, caching, overload control) comes from the framework, and the
// request grammar comes from internal/httpproto.
//
// The server handles static page requests: GET and HEAD with HTTP/1.0-1.1
// persistent connections. File content is fetched through the framework's
// emulated asynchronous file I/O (asynchronous completion events, per
// COPS-HTTP's O4 setting) and cached under the configured replacement
// policy (LRU in the paper's experiments).
package copshttp

import (
	"errors"
	"fmt"
	"io/fs"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/events"
	"repro/internal/httpproto"
	"repro/internal/logging"
	"repro/internal/nserver"
	"repro/internal/options"
)

// Config configures a COPS-HTTP server.
type Config struct {
	// DocRoot is the directory served. Required.
	DocRoot string
	// Options is the template option assignment; zero value means the
	// paper's COPS-HTTP preset (options.COPSHTTP()).
	Options *options.Options
	// Priority assigns connection priorities when O8 is on (the ISP
	// experiment's 13-line hook classifies by client IP).
	Priority nserver.PriorityFunc
	// IndexFile is served for directory requests. Default "index.html".
	IndexFile string
	// DecodeDelay, when positive, burns the configured duration in the
	// Decode Request step — the paper's third experiment makes the
	// workload CPU-bound by sleeping 50ms while decoding.
	DecodeDelay time.Duration
	// Dynamic maps path prefixes to dynamic-content handlers, the
	// extension the paper notes ("the same pattern can be used to
	// generate a server for dynamic content, except that more
	// application-dependent code would be required"). The longest
	// matching prefix wins; unmatched paths serve static files.
	Dynamic map[string]DynamicHandler
	// Trace receives the debug trace in Debug mode.
	Trace *logging.Trace
	// AccessLog receives one record per completed request when the
	// logging option (O12) is selected in Options.
	AccessLog *logging.Logger
	// GatePollInterval tunes the overload gate poll (tests/experiments).
	GatePollInterval time.Duration
	// ShedOnOverload switches option O9's behavior from postponing to
	// load shedding: while the overload gate is paused (or the MaxConns
	// bound is hit), new connections are accepted and answered with a
	// prebuilt "503 Service Unavailable" carrying a Retry-After header —
	// served from pooled buffers, bounded by the write timeout — instead
	// of queueing in the listen backlog. Saturation then surfaces to
	// clients as a fast explicit refusal they can back off from.
	ShedOnOverload bool
	// RetryAfter is the Retry-After delay stamped on shed 503 replies
	// (rounded up to whole seconds). Zero means 1 second.
	RetryAfter time.Duration
}

// DynamicHandler computes one response for a dynamic-content request. It
// runs on an Event Processor worker; it must not block indefinitely.
type DynamicHandler func(req *httpproto.Request) *httpproto.Response

// Server is a running COPS-HTTP instance.
type Server struct {
	ns        *nserver.Server
	docroot   string
	indexFile string
	dynamic   map[string]DynamicHandler
	// retryAfter is the precomputed Retry-After header value for shed
	// 503s; shedTimeout bounds the write of a shed reply.
	retryAfter  string
	shedTimeout time.Duration
	shedCount   atomic.Uint64
}

// connState carries one in-flight request through the asynchronous stat
// and read hops (the Asynchronous Completion Token's state).
type connState struct {
	conn *nserver.Conn
	req  *httpproto.Request
	// full is the resolved filesystem path being served.
	full string
	// modTime is the file's modification time from the stat hop.
	modTime time.Time
	// triedIndex guards the single directory -> index file retry.
	triedIndex bool
}

// New assembles a COPS-HTTP server.
func New(cfg Config) (*Server, error) {
	if cfg.DocRoot == "" {
		return nil, errors.New("copshttp: DocRoot required")
	}
	root, err := filepath.Abs(cfg.DocRoot)
	if err != nil {
		return nil, err
	}
	if fi, err := os.Stat(root); err != nil || !fi.IsDir() {
		return nil, fmt.Errorf("copshttp: DocRoot %q is not a directory", root)
	}
	opts := options.COPSHTTP()
	if cfg.Options != nil {
		opts = *cfg.Options
	}
	idx := cfg.IndexFile
	if idx == "" {
		idx = "index.html"
	}
	s := &Server{docroot: root, indexFile: idx, dynamic: cfg.Dynamic}
	s.retryAfter = strconv.FormatInt(ceilSeconds(cfg.RetryAfter), 10)
	s.shedTimeout = opts.WriteTimeout
	if s.shedTimeout <= 0 {
		s.shedTimeout = time.Second
	}
	var shed func(net.Conn)
	if cfg.ShedOnOverload {
		shed = s.shed
	}

	var codec nserver.Codec = httpproto.Codec{}
	if cfg.DecodeDelay > 0 {
		codec = delayCodec{inner: codec, delay: cfg.DecodeDelay}
	}
	ns, err := nserver.New(nserver.Config{
		Options:          opts,
		App:              nserver.AppFuncs{Request: s.handle},
		Codec:            codec,
		Priority:         cfg.Priority,
		Trace:            cfg.Trace,
		Logger:           cfg.AccessLog,
		GatePollInterval: cfg.GatePollInterval,
		Shed:             shed,
	})
	if err != nil {
		return nil, err
	}
	s.ns = ns
	return s, nil
}

// Framework returns the underlying N-Server (profiling, cache, shutdown).
func (s *Server) Framework() *nserver.Server { return s.ns }

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error { return s.ns.ListenAndServe(addr) }

// Shutdown stops the server.
func (s *Server) Shutdown() { s.ns.Shutdown() }

// Addr returns the bound address once serving.
func (s *Server) Addr() string {
	if a := s.ns.Addr(); a != nil {
		return a.String()
	}
	return ""
}

// Shed returns how many connections were answered with the load-shedding
// 503 fast path since the server started.
func (s *Server) Shed() uint64 { return s.shedCount.Load() }

// ceilSeconds renders a Retry-After delay as whole seconds, rounding up
// and clamping to at least 1: RFC 9110's Retry-After takes non-negative
// integer seconds, and a shed reply advertising "Retry-After: 0" would
// invite an immediate retry storm — exactly what shedding exists to
// damp. Zero and negative delays take the 1-second default.
func ceilSeconds(d time.Duration) int64 {
	if d <= 0 {
		return 1
	}
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// shed is the load-shedding fast path run for connections accepted while
// the overload gate is paused. It bypasses the five-step pipeline
// entirely: a pooled Response carrying the shared prebuilt 503 page and a
// Retry-After header is rendered into a pooled head buffer and written
// with one writev, bounded by the write timeout, then the connection is
// closed. Nothing here allocates per shed beyond the kernel's accept.
func (s *Server) shed(conn net.Conn) {
	s.shedCount.Add(1)
	_ = conn.SetWriteDeadline(time.Now().Add(s.shedTimeout))
	resp := httpproto.AcquireResponse()
	resp.Status = 503
	resp.Close = true
	resp.Body = httpproto.ErrorPage(503)
	resp.Headers.Set("Content-Type", "text/html")
	resp.Headers.Set("Retry-After", s.retryAfter)
	n, _ := httpproto.WriteResponse(conn, resp)
	// The shed reply bypasses Conn.Send, so it must count its own egress
	// for the O11 byte totals (every egress path counts exactly once).
	s.ns.Profile().BytesSent(int(n))
	httpproto.ReleaseResponse(resp)
	_ = conn.Close()
}

// handle is the Handle Request hook: validate, resolve the path under the
// document root, then run the event-driven file pipeline — an
// asynchronous stat hop (directory resolution and If-Modified-Since),
// then an asynchronous read hop — and reply from the completions.
func (s *Server) handle(c *nserver.Conn, req any) {
	r, ok := req.(*httpproto.Request)
	if !ok {
		_ = c.Reply(httpproto.ErrorResponse(500, true))
		c.Close()
		return
	}
	if h := s.lookupDynamic(r.Path); h != nil {
		s.serveDynamic(c, r, h)
		return
	}
	if r.Method != "GET" && r.Method != "HEAD" {
		s.reply(c, r, httpproto.ErrorResponse(405, !r.KeepAlive()))
		return
	}
	full, err := s.resolve(r.Path)
	if err != nil {
		s.reply(c, r, httpproto.ErrorResponse(403, !r.KeepAlive()))
		return
	}
	st := &connState{conn: c, req: r, full: full}
	if _, err := s.ns.AIO().Stat(full, st, c.Priority(), s.statDone); err != nil {
		s.reply(c, r, httpproto.ErrorResponse(503, true))
		c.Close()
	}
}

// statDone is the completion handler of the stat hop: it resolves
// directories to their index file (one retry), answers conditional
// requests with 304, and otherwise issues the read hop.
func (s *Server) statDone(tok events.Token, info os.FileInfo, err error) {
	st := tok.State.(*connState)
	c, r := st.conn, st.req
	if err != nil {
		status := 404
		if errors.Is(err, fs.ErrPermission) {
			status = 403
		}
		s.reply(c, r, httpproto.ErrorResponse(status, !r.KeepAlive()))
		return
	}
	if info.IsDir() {
		if st.triedIndex {
			s.reply(c, r, httpproto.ErrorResponse(403, !r.KeepAlive()))
			return
		}
		st.triedIndex = true
		st.full = filepath.Join(st.full, s.indexFile)
		if _, err := s.ns.AIO().Stat(st.full, st, c.Priority(), s.statDone); err != nil {
			s.reply(c, r, httpproto.ErrorResponse(503, true))
			c.Close()
		}
		return
	}
	st.modTime = info.ModTime()
	if httpproto.NotModifiedSince(r.Headers.Get("If-Modified-Since"), st.modTime) {
		resp := httpproto.AcquireResponse()
		resp.Status = 304
		resp.Headers.Set("Last-Modified", httpproto.FormatHTTPDateCached(st.modTime))
		resp.Close = !r.KeepAlive()
		s.reply(c, r, resp)
		httpproto.ReleaseResponse(resp)
		return
	}
	if _, err := s.ns.AIO().ReadFile(st.full, st, c.Priority(), s.fileDone); err != nil {
		s.reply(c, r, httpproto.ErrorResponse(503, true))
		c.Close()
	}
}

// fileDone is the Completion Handler: it runs when the emulated
// asynchronous read finishes (on the reactive pool for asynchronous
// completions) and performs the Encode Reply / Send Reply steps.
func (s *Server) fileDone(tok events.Token, data []byte, err error) {
	st := tok.State.(*connState)
	c, r := st.conn, st.req
	if err != nil {
		status := 404
		if errors.Is(err, fs.ErrPermission) {
			status = 403
		}
		s.reply(c, r, httpproto.ErrorResponse(status, !r.KeepAlive()))
		return
	}
	// The cached-file fast path: a pooled Response carries the cache's
	// shared bytes straight to the writev send, so serving a hit performs
	// no per-request allocation beyond the framework's fixed costs
	// (TestHotPathAllocs pins this).
	resp := httpproto.AcquireResponse()
	resp.Status = 200
	resp.Headers.Set("Content-Type", httpproto.MimeType(st.full))
	resp.Body = data
	if !st.modTime.IsZero() {
		resp.Headers.Set("Last-Modified", httpproto.FormatHTTPDateCached(st.modTime))
	}
	if r.Method == "HEAD" {
		resp.Headers.Set("Content-Length", strconv.Itoa(len(data)))
		resp.Body = nil
	}
	resp.Close = !r.KeepAlive()
	s.reply(c, r, resp)
	httpproto.ReleaseResponse(resp)
}

// lookupDynamic returns the handler with the longest matching path
// prefix (nil when the path is static).
func (s *Server) lookupDynamic(path string) DynamicHandler {
	var best DynamicHandler
	bestLen := -1
	for prefix, h := range s.dynamic {
		if len(prefix) > bestLen && strings.HasPrefix(path, prefix) {
			best = h
			bestLen = len(prefix)
		}
	}
	return best
}

// serveDynamic runs a dynamic-content handler with panic isolation.
func (s *Server) serveDynamic(c *nserver.Conn, r *httpproto.Request, h DynamicHandler) {
	resp := func() (resp *httpproto.Response) {
		defer func() {
			if rec := recover(); rec != nil {
				resp = httpproto.ErrorResponse(500, true)
			}
		}()
		return h(r)
	}()
	if resp == nil {
		resp = httpproto.ErrorResponse(404, !r.KeepAlive())
	}
	if !resp.Close {
		resp.Close = !r.KeepAlive()
	}
	if r.Method == "HEAD" {
		resp.Headers.Set("Content-Length", strconv.Itoa(len(resp.Body)))
		resp.Body = nil
	}
	s.reply(c, r, resp)
}

// reply sends the response, writes the access-log record (O12) and
// closes non-persistent connections.
func (s *Server) reply(c *nserver.Conn, r *httpproto.Request, resp *httpproto.Response) {
	if r != nil {
		resp.Proto = r.Proto
	}
	_ = c.Reply(resp)
	if lg := s.ns.Logger(); lg != nil && r != nil {
		// Common-log-style record — remote, request line, status, bytes —
		// plus the O12 trace ID so a sampled "trace id=..." line and its
		// access-log record can be joined.
		lg.Infof("%s \"%s %s %s\" %d %d id=%s",
			c.RemoteAddr(), r.Method, r.Target, r.Proto, resp.Status, len(resp.Body), c.RequestID())
	}
	if resp.Close {
		c.Close()
	}
}

// resolve maps a cleaned request path to a file under the document root.
// Directory resolution happens in the asynchronous stat hop, so no
// blocking filesystem call occurs here.
func (s *Server) resolve(reqPath string) (string, error) {
	p := httpproto.CleanPath(reqPath)
	if strings.HasSuffix(p, "/") {
		p += s.indexFile
	}
	full := filepath.Join(s.docroot, filepath.FromSlash(p))
	// CleanPath cannot escape the root, but keep the invariant explicit.
	if full != s.docroot && !strings.HasPrefix(full, s.docroot+string(filepath.Separator)) {
		return "", errors.New("copshttp: path escapes document root")
	}
	return full, nil
}

// delayCodec wraps a codec with the CPU-burn of the overload experiment.
type delayCodec struct {
	inner nserver.Codec
	delay time.Duration
}

// Decode sleeps for the configured delay before decoding, making request
// decoding CPU-bound as in the paper's third experiment.
func (d delayCodec) Decode(buf []byte) (any, int, error) {
	req, n, err := d.inner.Decode(buf)
	if req != nil {
		time.Sleep(d.delay)
	}
	return req, n, err
}

// Encode delegates to the wrapped codec.
func (d delayCodec) Encode(reply any) ([]byte, error) { return d.inner.Encode(reply) }

// AppendHead preserves the inner codec's zero-copy path (the delay applies
// only to decoding).
func (d delayCodec) AppendHead(dst []byte, reply any) (head, body []byte, err error) {
	if be, ok := d.inner.(nserver.BufferEncoder); ok {
		return be.AppendHead(dst, reply)
	}
	data, err := d.inner.Encode(reply)
	if err != nil {
		return nil, nil, err
	}
	return dst, data, nil
}
