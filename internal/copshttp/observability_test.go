package copshttp

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/options"
)

// TestCeilSecondsBoundaries pins the Retry-After rounding rule: round up
// to whole seconds and never advertise less than one second, so a shed
// 503 can never invite an immediate retry storm.
func TestCeilSecondsBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int64
	}{
		{-time.Second, 1},
		{0, 1},
		{time.Nanosecond, 1},
		{500 * time.Millisecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second - time.Nanosecond, 1},
		{time.Second, 1},
		{time.Second + time.Nanosecond, 2},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 2},
		{7 * time.Second, 7},
	}
	for _, tc := range cases {
		if got := ceilSeconds(tc.d); got != tc.want {
			t.Errorf("ceilSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// TestRetryAfterHeaderValue checks the precomputed header value end to
// end through New: sub-second configs must clamp to "1", not render "0".
func TestRetryAfterHeaderValue(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},                      // unset: 1-second default
		{-5 * time.Second, "1"},       // nonsense config: clamped
		{200 * time.Millisecond, "1"}, // a naive d/time.Second renders "0"
		{time.Second, "1"},
		{2500 * time.Millisecond, "3"},
		{30 * time.Second, "30"},
	}
	for _, tc := range cases {
		opts := options.COPSHTTP()
		s, err := New(Config{
			DocRoot:        buildDocRoot(t),
			Options:        &opts,
			ShedOnOverload: true,
			RetryAfter:     tc.d,
		})
		if err != nil {
			t.Fatal(err)
		}
		if s.retryAfter != tc.want {
			t.Errorf("RetryAfter %v precomputed as %q, want %q", tc.d, s.retryAfter, tc.want)
		}
	}
}

// pinQueue is a test-controlled QueueLenner for forcing the O9 overload
// gate open or shut deterministically.
type pinQueue struct {
	mu sync.Mutex
	n  int
}

func (q *pinQueue) QueueLen() int { q.mu.Lock(); defer q.mu.Unlock(); return q.n }
func (q *pinQueue) set(n int)     { q.mu.Lock(); q.n = n; q.mu.Unlock() }

// countingConn counts bytes the client reads off the wire. Reads happen
// from a single client goroutine, so a plain int is fine.
type countingConn struct {
	net.Conn
	n *int64
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	*c.n += int64(n)
	return n, err
}

// TestBytesSentExactlyOnce is the egress-accounting regression test: the
// O11 BytesSent total must equal the bytes a client actually observes on
// the wire across every egress path — keep-alive replies, error replies,
// Connection: close replies, and the shed 503 fast path (which bypasses
// Conn.Send and historically was not counted at all).
func TestBytesSentExactlyOnce(t *testing.T) {
	opts := options.COPSHTTP().WithOverloadControl(20, 5)
	opts.Profiling = true
	s, err := New(Config{
		DocRoot:        buildDocRoot(t),
		Options:        &opts,
		ShedOnOverload: true,
		RetryAfter:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	addr := s.Addr()

	var observed int64 // every byte any client read off the wire

	// One keep-alive connection carrying 200, 404 and 200 replies, then a
	// Connection: close request; draining to EOF afterwards guarantees the
	// counter saw every byte the server wrote, bufio buffering included.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn := countingConn{Conn: raw, n: &observed}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	r := bufio.NewReader(conn)
	for _, path := range []string{"/index.html", "/missing", "/about.txt"} {
		fmt.Fprintf(raw, "GET %s HTTP/1.1\r\nHost: test\r\n\r\n", path)
		if _, _, _, err := readResponse(r, false); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}
	fmt.Fprintf(raw, "GET /img/logo.png HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
	if _, err := io.Copy(io.Discard, r); err != nil {
		t.Fatalf("drain keep-alive conn: %v", err)
	}
	raw.Close()

	// Force the gate shut and take a shed 503 on a fresh connection. The
	// shed path writes without reading, so just drain to EOF.
	q := &pinQueue{}
	if err := s.Framework().Overload().Watch("pin", q, 10, 5); err != nil {
		t.Fatal(err)
	}
	q.set(100)
	shedConn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	shedConn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var shedBytes int64
	if shedBytes, err = io.Copy(io.Discard, countingConn{Conn: shedConn, n: &observed}); err != nil {
		t.Fatalf("drain shed conn: %v", err)
	}
	shedConn.Close()
	if s.Shed() == 0 {
		t.Fatal("shed fast path never ran")
	}
	if shedBytes == 0 {
		t.Fatal("shed 503 carried no bytes")
	}

	snap := s.Framework().Profile().Snapshot()
	if int64(snap.BytesSent) != observed {
		t.Fatalf("profile BytesSent = %d, client observed %d bytes (delta %+d)",
			snap.BytesSent, observed, int64(snap.BytesSent)-observed)
	}
}
