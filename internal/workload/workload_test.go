package workload

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDirBytes(t *testing.T) {
	// 9 files per class: class sums are 45*base.
	want := int64(45*100 + 45*1024 + 45*10240 + 45*102400)
	if got := DirBytes(); got != want {
		t.Errorf("DirBytes = %d, want %d", got, want)
	}
}

// paperSetBytes is the paper's 204.8 MB file set size.
const paperSetBytes = int64(2048) * 100 << 10

func TestDirsForTotal(t *testing.T) {
	// The paper's 204.8 MB set.
	dirs := DirsForTotal(paperSetBytes)
	if dirs < 40 || dirs < 1 {
		t.Errorf("dirs = %d", dirs)
	}
	fs := GenerateFileSet(dirs)
	total := fs.TotalBytes()
	target := int64(paperSetBytes)
	if diff := total - target; diff > DirBytes() || diff < -DirBytes() {
		t.Errorf("set size %d too far from %d", total, target)
	}
	if DirsForTotal(0) != 1 {
		t.Error("minimum dirs should be 1")
	}
}

func TestGenerateFileSetStructure(t *testing.T) {
	fs := GenerateFileSet(3)
	if len(fs.Files) != 3*36 {
		t.Fatalf("files = %d, want 108", len(fs.Files))
	}
	// Spot-check the layout and sizes.
	if fs.Files[0].Path != "/dir0000/class0_1" || fs.Files[0].Size != 100 {
		t.Errorf("first file %+v", fs.Files[0])
	}
	last := fs.Files[len(fs.Files)-1]
	if last.Path != "/dir0002/class3_9" || last.Size != 9*102400 {
		t.Errorf("last file %+v", last)
	}
	if GenerateFileSet(0).Dirs != 1 {
		t.Error("zero dirs should clamp to 1")
	}
}

func TestMeanAccessSizeNearPaper(t *testing.T) {
	fs := GenerateFileSet(41)
	mean := fs.MeanAccessSize()
	// The paper reports an average file size of 16 KB; the SpecWeb99 mix
	// gives ~14.8 KB analytic mean.
	if mean < 13_000 || mean > 17_500 {
		t.Errorf("analytic mean = %.0f bytes, outside SpecWeb99 range", mean)
	}
	s := NewSampler(fs, 1)
	emp := s.EstimateMean(200_000)
	if emp < mean*0.9 || emp > mean*1.1 {
		t.Errorf("empirical mean %.0f deviates from analytic %.0f", emp, mean)
	}
}

func TestSamplerDeterministic(t *testing.T) {
	fs := GenerateFileSet(10)
	a, b := NewSampler(fs, 42), NewSampler(fs, 42)
	for i := 0; i < 100; i++ {
		if a.Pick() != b.Pick() {
			t.Fatalf("samplers diverged at draw %d", i)
		}
	}
	c := NewSampler(fs, 43)
	same := true
	for i := 0; i < 100; i++ {
		if a.Pick() != c.Pick() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestSamplerClassMix(t *testing.T) {
	fs := GenerateFileSet(10)
	s := NewSampler(fs, 7)
	counts := map[byte]int{}
	const n = 100_000
	for i := 0; i < n; i++ {
		f := s.Pick()
		// Path is /dirXXXX/classC_I; class digit is at a fixed offset.
		counts[f.Path[14]]++
	}
	check := func(class byte, want float64) {
		got := float64(counts[class]) / n
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("class %c frequency %.3f, want ~%.2f", class, got, want)
		}
	}
	check('0', 0.35)
	check('1', 0.50)
	check('2', 0.14)
	check('3', 0.01)
}

func TestSamplerZipfDirectories(t *testing.T) {
	fs := GenerateFileSet(41)
	s := NewSampler(fs, 9)
	share := s.ZipfCheck(100_000)
	want := 1 / HarmonicApprox(41) // most popular directory's share
	if share < want*0.85 || share > want*1.15 {
		t.Errorf("dir0 share %.4f, want ~%.4f", share, want)
	}
}

func TestHarmonicApprox(t *testing.T) {
	// Exact small-n values.
	if h := HarmonicApprox(1); h != 1 {
		t.Errorf("H(1) = %f", h)
	}
	if h := HarmonicApprox(4); h < 2.08 || h > 2.09 {
		t.Errorf("H(4) = %f", h)
	}
	// Approximation for large n: H(1000) ~ 7.485.
	if h := HarmonicApprox(1000); h < 7.48 || h > 7.49 {
		t.Errorf("H(1000) = %f", h)
	}
}

func TestMaterialize(t *testing.T) {
	fs := GenerateFileSet(1)
	root := t.TempDir()
	if err := fs.Materialize(root); err != nil {
		t.Fatal(err)
	}
	for _, f := range []FileSpec{fs.Files[0], fs.Files[len(fs.Files)-1]} {
		full := filepath.Join(root, filepath.FromSlash(f.Path))
		fi, err := os.Stat(full)
		if err != nil {
			t.Fatalf("missing %s: %v", f.Path, err)
		}
		if fi.Size() != f.Size {
			t.Errorf("%s size %d, want %d", f.Path, fi.Size(), f.Size)
		}
	}
	// Content embeds the path for verifiability.
	data, err := os.ReadFile(filepath.Join(root, "dir0000", "class1_1"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:17]) != "/dir0000/class1_1" {
		t.Errorf("content prefix %q", data[:17])
	}
}

func TestClientConstants(t *testing.T) {
	if RequestsPerConn != 5 || ThinkTimeMs != 20 {
		t.Error("paper workload constants changed")
	}
}
