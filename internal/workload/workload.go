// Package workload generates the SpecWeb99-like static file set and
// client behaviour of the paper's evaluation: "The file size and access
// frequency distribution follows the SpecWeb99 benchmark. A file set of
// size 204.8 MB is created ... with an average file size of 16 KB", and
// clients "establish a connection to the Web server, issue 5 HTTP
// requests ... then terminate the connection", pausing 20ms after each
// page.
//
// The SpecWeb99 file mix has four size classes per directory — class 0:
// 0.1-0.9 KB, class 1: 1-9 KB, class 2: 10-90 KB, class 3: 100-900 KB,
// nine files each — accessed with probabilities 35%, 50%, 14% and 1%.
// Directory popularity follows a Zipf distribution.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
)

// SpecWeb99 class definitions.
var (
	classBase  = [4]int64{100, 1 << 10, 10 << 10, 100 << 10}
	classProb  = [4]float64{0.35, 0.50, 0.14, 0.01}
	filesPerCl = 9
)

// FileSpec describes one file of the generated set.
type FileSpec struct {
	Path string // virtual path, e.g. "/dir0007/class2_5"
	Size int64
}

// FileSet is a generated SpecWeb99-like file population.
type FileSet struct {
	Files []FileSpec
	Dirs  int
	total int64
}

// DirBytes is the on-disk size of one SpecWeb99-like directory
// (~5 MB: 9 files of each class).
func DirBytes() int64 {
	var sum int64
	for _, base := range classBase {
		for i := 1; i <= filesPerCl; i++ {
			sum += int64(i) * base
		}
	}
	return sum
}

// DirsForTotal returns the directory count whose set size is closest to
// totalBytes (the paper's 204.8 MB set needs 41 directories).
func DirsForTotal(totalBytes int64) int {
	per := DirBytes()
	n := int((totalBytes + per/2) / per)
	if n < 1 {
		n = 1
	}
	return n
}

// GenerateFileSet creates the virtual file population for dirs
// directories.
func GenerateFileSet(dirs int) *FileSet {
	if dirs < 1 {
		dirs = 1
	}
	fs := &FileSet{Dirs: dirs}
	for d := 0; d < dirs; d++ {
		for class := 0; class < 4; class++ {
			for i := 1; i <= filesPerCl; i++ {
				size := int64(i) * classBase[class]
				fs.Files = append(fs.Files, FileSpec{
					Path: fmt.Sprintf("/dir%04d/class%d_%d", d, class, i),
					Size: size,
				})
				fs.total += size
			}
		}
	}
	return fs
}

// TotalBytes returns the set's aggregate size.
func (fs *FileSet) TotalBytes() int64 { return fs.total }

// MeanAccessSize returns the expected transfer size under the SpecWeb99
// access distribution (~15-16 KB).
func (fs *FileSet) MeanAccessSize() float64 {
	var mean float64
	for class := 0; class < 4; class++ {
		var classMean float64
		for i := 1; i <= filesPerCl; i++ {
			classMean += float64(int64(i) * classBase[class])
		}
		classMean /= float64(filesPerCl)
		mean += classProb[class] * classMean
	}
	return mean
}

// Materialize writes the file set under root for live-TCP experiments.
// File contents are a repeating pattern of the path (so responses are
// verifiable).
func (fs *FileSet) Materialize(root string) error {
	for _, f := range fs.Files {
		full := filepath.Join(root, filepath.FromSlash(f.Path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			return err
		}
		data := make([]byte, f.Size)
		pat := []byte(f.Path + "\n")
		for i := range data {
			data[i] = pat[i%len(pat)]
		}
		if err := os.WriteFile(full, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Sampler draws file accesses under the SpecWeb99 distribution:
// Zipf-popular directories, the 35/50/14/1 class mix, and uniform file
// choice within a class. Deterministic for a given seed.
type Sampler struct {
	fs      *FileSet
	rng     *rand.Rand
	dirCDF  []float64
	classCD [4]float64
}

// NewSampler creates a sampler over fs with the given seed.
func NewSampler(fs *FileSet, seed int64) *Sampler {
	s := &Sampler{fs: fs, rng: rand.New(rand.NewSource(seed))}
	// Zipf(1.0) directory popularity.
	weights := make([]float64, fs.Dirs)
	var sum float64
	for i := range weights {
		weights[i] = 1 / float64(i+1)
		sum += weights[i]
	}
	s.dirCDF = make([]float64, fs.Dirs)
	var acc float64
	for i, w := range weights {
		acc += w / sum
		s.dirCDF[i] = acc
	}
	var cacc float64
	for c, p := range classProb {
		cacc += p
		s.classCD[c] = cacc
	}
	return s
}

// Pick draws one file access.
func (s *Sampler) Pick() FileSpec {
	dir := s.searchCDF(s.dirCDF, s.rng.Float64())
	u := s.rng.Float64()
	class := 3
	for c := 0; c < 4; c++ {
		if u <= s.classCD[c] {
			class = c
			break
		}
	}
	file := s.rng.Intn(filesPerCl)
	idx := dir*4*filesPerCl + class*filesPerCl + file
	return s.fs.Files[idx]
}

func (s *Sampler) searchCDF(cdf []float64, u float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// EstimateMean empirically estimates the mean access size over n draws
// (used to sanity-check calibration).
func (s *Sampler) EstimateMean(n int) float64 {
	var sum int64
	for i := 0; i < n; i++ {
		sum += s.Pick().Size
	}
	return float64(sum) / float64(n)
}

// Client behaviour constants from the paper's workload description.
const (
	// RequestsPerConn is the number of HTTP requests per persistent
	// connection (simulating HTTP/1.1 persistence).
	RequestsPerConn = 5
	// ThinkTimeMs is the pause after receiving each page, simulating the
	// wide-area transfer delay.
	ThinkTimeMs = 20
)

// ZipfCheck returns the fraction of accesses landing in the most popular
// directory over n draws (diagnostics; should be ~1/H(dirs)).
func (s *Sampler) ZipfCheck(n int) float64 {
	hits := 0
	for i := 0; i < n; i++ {
		if f := s.Pick(); len(f.Path) >= 8 && f.Path[:8] == "/dir0000" {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

// HarmonicApprox returns H(n), for documentation of the Zipf share.
func HarmonicApprox(n int) float64 {
	if n < 100 {
		h := 0.0
		for i := 1; i <= n; i++ {
			h += 1 / float64(i)
		}
		return h
	}
	return math.Log(float64(n)) + 0.5772156649 + 1/(2*float64(n))
}
