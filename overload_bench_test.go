package repro

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/copshttp"
	"repro/internal/events"
	"repro/internal/options"
)

// BenchmarkAdaptiveOverload drives COPS-HTTP past saturation — a decode
// delay bottlenecks the event pool, and more closed-loop clients than
// the bottleneck can serve hammer it connection-per-request — and
// compares the static watermark gate against the adaptive limiter on
// the three numbers overload control is judged by:
//
//	goodput_rps  completed 200 responses per wall-clock second
//	p99_ms       99th-percentile latency of the successful requests —
//	             the static gate queues deeply before pausing, the
//	             limiter sheds as soon as measured queue wait turns up
//	hi_ok_frac   fraction of high-priority requests (source 127.0.0.1;
//	             the sheddable class dials from 127.0.0.2) answered 200:
//	             the limiter's priority-aware shedding keeps this class
//	             flowing, the static gate sheds blindly
//	lo_ok_frac   the same fraction for the sheddable class
//
// Both variants shed with the 503 fast path, so a shed request costs a
// refusal, not a queue slot.
func BenchmarkAdaptiveOverload(b *testing.B) {
	for _, mode := range []struct {
		name     string
		adaptive bool
	}{
		{"static", false},
		{"adaptive", true},
	} {
		b.Run(mode.name, func(b *testing.B) { benchOverload(b, mode.adaptive) })
	}
}

// fromPortalIP reports whether addr is the benchmark's high-priority
// source address — the transport-fact classifier (peer IP), exactly what
// a front end distinguishing portal customers would use.
func fromPortalIP(addr net.Addr) bool {
	host, _, err := net.SplitHostPort(addr.String())
	if err != nil {
		return false
	}
	return host == "127.0.0.1"
}

func benchOverload(b *testing.B, adaptive bool) {
	dir := b.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "index.html"), []byte("<html>overload</html>"), 0o644); err != nil {
		b.Fatal(err)
	}
	// Both variants get the identical static configuration — watermarks
	// and connection bound — so the only difference measured is the
	// adaptive limiter layered on top. The watermarks are sized to the
	// deep-backlog regime (the paper's postpone-at-100 style), which is
	// precisely where the static gate's weakness lives: it reacts to
	// queue depth long after queue wait has degraded.
	opts := options.COPSHTTP().
		WithOverloadControl(100, 20).
		WithHardening(20*time.Second, 20*time.Second, 1<<20)
	opts.MaxConnections = 256
	if adaptive {
		opts = opts.WithAdaptiveShed(true)
	}
	cfg := copshttp.Config{
		DocRoot:        dir,
		Options:        &opts,
		ShedOnOverload: true,
		RetryAfter:     time.Second,
		// The saturation bottleneck: every request burns CPU in decode on
		// an event-pool worker, so offered load beyond the pool's
		// capacity piles up as queue wait — the limiter's input signal.
		DecodeDelay: 5 * time.Millisecond,
	}
	if adaptive {
		cfg.ShedPriority = func(c net.Conn) events.Priority {
			if fromPortalIP(c.RemoteAddr()) {
				return 0
			}
			return 1
		}
	}
	srv, err := copshttp.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown()
	addr := srv.Addr()

	// Warm up uncontended so the limiter's queue-wait baseline seeds at
	// the healthy value before the storm; without this the first sample
	// can arrive mid-saturation and seed the baseline at the congested
	// wait, making the run order-dependent. Both variants warm up so the
	// comparison stays fair. 1-in-16 submissions are sampled, so ~16
	// sequential samples need ~256 requests; keep it cheaper and rely on
	// the min-tracking baseline converging fast downward.
	for i := 0; i < 64; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Fatal(err)
		}
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		fmt.Fprint(conn, "GET /index.html HTTP/1.0\r\n\r\n")
		io.Copy(io.Discard, conn)
		conn.Close()
	}

	const clients = 128
	type tally struct {
		hiOK, hiTot, loOK, loTot int
		lats, hiLats             []int64
	}
	results := make([]tally, clients)
	var issued atomic.Int64

	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			o := &results[c]
			// Half the clients are portal class (source 127.0.0.1), half
			// homepage class (source 127.0.0.2).
			hi := c%2 == 0
			var dialer net.Dialer
			if !hi {
				dialer.LocalAddr = &net.TCPAddr{IP: net.IPv4(127, 0, 0, 2)}
			}
			for issued.Add(1) <= int64(b.N) {
				t0 := time.Now()
				conn, err := dialer.Dial("tcp", addr)
				if err != nil {
					continue
				}
				conn.SetDeadline(time.Now().Add(30 * time.Second))
				fmt.Fprint(conn, "GET /index.html HTTP/1.0\r\n\r\n")
				resp, _ := io.ReadAll(conn)
				conn.Close()
				ok := bytes.Contains(resp, []byte(" 200 "))
				if hi {
					o.hiTot++
					if ok {
						o.hiOK++
					}
				} else {
					o.loTot++
					if ok {
						o.loOK++
					}
				}
				if ok {
					lat := time.Since(t0).Nanoseconds()
					o.lats = append(o.lats, lat)
					if hi {
						o.hiLats = append(o.hiLats, lat)
					}
				} else {
					// A refusal comes back in microseconds; without a
					// client-side backoff the shed class retries so fast it
					// consumes nearly the whole b.N budget and the run
					// degenerates into a retry storm. Real shed-aware clients
					// back off (the 503 carries Retry-After); a short pause
					// keeps the benchmark in the steady overload regime.
					time.Sleep(50 * time.Millisecond)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()

	var agg tally
	for i := range results {
		agg.hiOK += results[i].hiOK
		agg.hiTot += results[i].hiTot
		agg.loOK += results[i].loOK
		agg.loTot += results[i].loTot
		agg.lats = append(agg.lats, results[i].lats...)
		agg.hiLats = append(agg.hiLats, results[i].hiLats...)
	}
	p99ms := func(lats []int64) (float64, bool) {
		if len(lats) == 0 {
			return 0, false
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return float64(lats[len(lats)*99/100]) / 1e6, true
	}
	b.ReportMetric(float64(len(agg.lats))/elapsed.Seconds(), "goodput_rps")
	if p99, ok := p99ms(agg.lats); ok {
		b.ReportMetric(p99, "p99_ms")
	}
	if p99, ok := p99ms(agg.hiLats); ok {
		b.ReportMetric(p99, "hi_p99_ms")
	}
	if agg.hiTot > 0 {
		b.ReportMetric(float64(agg.hiOK)/float64(agg.hiTot), "hi_ok_frac")
	}
	if agg.loTot > 0 {
		b.ReportMetric(float64(agg.loOK)/float64(agg.loTot), "lo_ok_frac")
	}
	if lim := srv.Framework().Admission(); lim != nil {
		b.Logf("limiter snapshot: %+v", lim.Snapshot())
	}
}
