// Command copscluster runs the distributed N-Server front end (the
// paper's proposed extension): a connection-level balancer that spreads
// client connections across backend COPS servers.
//
// Usage:
//
//	copscluster -addr :8080 -backends 10.0.0.1:8080,10.0.0.2:8080
//	copscluster -addr :8080 -backends a:80,b:80 -strategy least-connections
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/profiling"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "front-end listen address")
		backends = flag.String("backends", "", "comma-separated backend addresses (required)")
		strategy = flag.String("strategy", "round-robin", "round-robin or least-connections")
		cooldown = flag.Duration("cooldown", time.Second, "how long a failed backend is skipped")
		hedge    = flag.Bool("hedge", false, "issue a budgeted hedged dial to a second backend when the primary dial exceeds the observed p95 latency; the losing dial is canceled")
		hedgeDel = flag.Duration("hedge-delay", 0, "fixed hedge delay override; 0 derives it from the dial-latency p95")
		shards   = flag.Int("shards", 0, "accept loops on the front end (SO_REUSEPORT listeners on Linux); 0 = one per CPU")
		eventDrv = flag.Bool("event-driven", false, "mark this deployment's backends as running the kernel-event read path (copshttp/copsftp -event-driven); surfaces the nserver_event_driven gauge on the front end's /metrics — the splice forwards themselves keep their goroutine pairs")
		mAddr    = flag.String("metrics-addr", "", "serve Prometheus/JSON metrics on this address (/metrics, /metrics.json); empty disables")
	)
	flag.Parse()
	if *backends == "" {
		fmt.Fprintln(os.Stderr, "copscluster: -backends is required")
		os.Exit(2)
	}
	var strat cluster.Strategy
	switch *strategy {
	case "round-robin":
		strat = cluster.RoundRobin
	case "least-connections":
		strat = cluster.LeastConnections
	default:
		fmt.Fprintf(os.Stderr, "copscluster: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	nShards := *shards
	if nShards <= 0 {
		nShards = runtime.NumCPU()
	}
	prof := profiling.New()
	lb, err := cluster.New(cluster.Config{
		Backends:     strings.Split(*backends, ","),
		Strategy:     strat,
		CoolDown:     *cooldown,
		AcceptShards: nShards,
		Profile:      prof,
		Hedge:        *hedge,
		HedgeDelay:   *hedgeDel,
	})
	if err != nil {
		fatal(err)
	}
	if err := lb.ListenAndServe(*addr); err != nil {
		fatal(err)
	}
	fmt.Printf("%s on %s (accept shards=%d)\n", lb, lb.Addr(), lb.AcceptShards())

	if *mAddr != "" {
		cfg := metrics.Config{Profile: prof, Cluster: lb}
		if *eventDrv {
			cfg.EventDriven = func() bool { return true }
		}
		if *hedge {
			cfg.Hedge = lb.HedgeStats
		}
		ms, err := metrics.NewServer(*mAddr, cfg)
		if err != nil {
			fatal(err)
		}
		defer ms.Close()
		fmt.Printf("metrics on http://%s/metrics\n", ms.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	lb.Shutdown()
	fmt.Println("per-backend connections:", lb.Forwarded())
	fmt.Println("profile:", prof.Snapshot())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "copscluster:", err)
	os.Exit(1)
}
