// Command copshttp runs the COPS-HTTP static web server: the paper's
// high-performance Web server built on the N-Server framework.
//
// Usage:
//
//	copshttp -addr :8080 -root ./site
//	copshttp -addr :8080 -root ./site -cache LFU -cache-bytes 33554432
//	copshttp -addr :8080 -root ./site -sched 1,8 -profile
//	copshttp -addr :8080 -root ./site -overload 20,5 -decode-delay 50ms
//	copshttp -addr :8080 -root ./site -materialize 4   # SpecWeb99-like set
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/copshttp"
	"repro/internal/events"
	"repro/internal/metrics"
	"repro/internal/nserver"
	"repro/internal/options"
	"repro/internal/workload"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		root        = flag.String("root", "", "document root (required)")
		cachePolicy = flag.String("cache", "LRU", "file cache policy: None, LRU, LFU, LRU-MIN, LRU-Threshold, Hyper-G")
		cacheBytes  = flag.Int64("cache-bytes", 20<<20, "file cache capacity in bytes")
		sched       = flag.String("sched", "", "event scheduling quotas 'portal,homepage' (e.g. 1,8); empty disables O8")
		overload    = flag.String("overload", "", "overload watermarks 'high,low' (e.g. 20,5); empty disables O9")
		decodeDelay = flag.Duration("decode-delay", 0, "CPU burn per decoded request (the paper's 3rd experiment)")
		readTO      = flag.Duration("read-timeout", 0, "per-read and request-assembly deadline (slowloris defense); 0 disables")
		writeTO     = flag.Duration("write-timeout", 0, "per-reply write deadline; 0 disables")
		maxReq      = flag.Int("max-request", 0, "max buffered request bytes per connection; 0 is unlimited")
		largeFile   = flag.Int64("large-file-threshold", 1<<20, "stream files of at least this many bytes from a descriptor (sendfile on Linux), bypassing the cache; 0 buffers everything")
		shed        = flag.Bool("shed", false, "with -overload: answer 503+Retry-After while the gate is paused instead of postponing accepts")
		adaptive    = flag.Bool("adaptive-shed", false, "with -overload: replace the static watermark gate with the AIMD admission limiter (priority-aware shedding, dynamic Retry-After)")
		retryAfter  = flag.Duration("retry-after", 0, "Retry-After delay on shed 503 replies (default 1s; with -adaptive-shed the limiter's backoff horizon overrides it)")
		shards      = flag.Int("shards", 0, "runtime shards (reactor + event pool per shard); 0 = one per CPU, 1 = the paper's single-reactor layout")
		eventDriven = flag.Bool("event-driven", false, "park idle connections in a per-shard kernel epoll set instead of a reader goroutine each (Linux; elsewhere and for descriptor-hiding transports the goroutine path is the transparent fallback)")
		directDisp  = flag.Bool("direct-dispatch", false, "serve hot cacheable GETs run-to-completion on the reactor goroutine from a rendered-response cache (implies -event-driven; misses, pipelined backlogs and overload fall back to the queued path)")
		profile     = flag.Bool("profile", false, "enable performance profiling (O11)")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus/JSON metrics on this address (/metrics, /metrics.json); empty disables")
		debug       = flag.Bool("debug", false, "generate in debug mode (O10): print the internal event trace on exit")
		materialize = flag.Int("materialize", 0, "materialize a SpecWeb99-like file set of N directories under -root first")
	)
	flag.Parse()
	if *root == "" {
		fmt.Fprintln(os.Stderr, "copshttp: -root is required")
		os.Exit(2)
	}

	if *materialize > 0 {
		fs := workload.GenerateFileSet(*materialize)
		if err := fs.Materialize(*root); err != nil {
			fatal(err)
		}
		fmt.Printf("materialized %d files (%d bytes) under %s\n",
			len(fs.Files), fs.TotalBytes(), *root)
	}

	opts := options.COPSHTTP()
	policy, err := options.ParseCachePolicy(*cachePolicy)
	if err != nil {
		fatal(err)
	}
	opts.Cache = policy
	opts.CacheCapacity = *cacheBytes
	if policy == options.NoCache {
		opts.CacheCapacity = 0
		opts.FileIOThreads = 0
	}
	if policy == options.LRUThreshold {
		opts.CacheThreshold = *cacheBytes / 4
	}
	opts.Profiling = *profile
	opts.Shards = *shards
	opts.EventDriven = *eventDriven
	if *directDisp {
		// Validate requires the event-driven substrate; the flag implies it.
		opts.EventDriven = true
		opts.DirectDispatch = true
	}
	if *debug {
		opts.Mode = options.Debug
	}

	var prio nserver.PriorityFunc
	if *sched != "" {
		quotas, err := parseInts(*sched)
		if err != nil {
			fatal(fmt.Errorf("bad -sched: %w", err))
		}
		opts = opts.WithScheduling(quotas...)
		// The paper's 13-line scheduling policy: classify by client IP
		// (here: even final octet = portal, otherwise homepage).
		prio = func(c *nserver.Conn) events.Priority {
			host, _, err := net.SplitHostPort(c.RemoteAddr().String())
			if err != nil {
				return 1
			}
			ip := net.ParseIP(host).To4()
			if ip != nil && ip[3]%2 == 0 {
				return 0
			}
			return 1
		}
	}
	if *overload != "" {
		wm, err := parseInts(*overload)
		if err != nil || len(wm) != 2 {
			fatal(fmt.Errorf("bad -overload %q", *overload))
		}
		opts = opts.WithOverloadControl(wm[0], wm[1])
	}
	var shedPrio func(net.Conn) events.Priority
	if *adaptive {
		opts = opts.WithAdaptiveShed(true)
		// Classify raw connections for priority-aware shedding with the
		// same rule the scheduler uses: even final octet = portal.
		shedPrio = func(c net.Conn) events.Priority {
			host, _, err := net.SplitHostPort(c.RemoteAddr().String())
			if err != nil {
				return 1
			}
			ip := net.ParseIP(host).To4()
			if ip != nil && ip[3]%2 == 0 {
				return 0
			}
			return 1
		}
	}
	if *readTO > 0 || *writeTO > 0 || *maxReq > 0 {
		opts = opts.WithHardening(*readTO, *writeTO, *maxReq)
	}
	if *largeFile > 0 {
		opts = opts.WithLargeFiles(*largeFile)
	}

	srv, err := copshttp.New(copshttp.Config{
		DocRoot:        *root,
		Options:        &opts,
		Priority:       prio,
		DecodeDelay:    *decodeDelay,
		ShedOnOverload: *shed,
		RetryAfter:     *retryAfter,
		ShedPriority:   shedPrio,
	})
	if err != nil {
		fatal(err)
	}
	if err := srv.ListenAndServe(*addr); err != nil {
		fatal(err)
	}
	fmt.Printf("COPS-HTTP serving %s on %s (cache=%s, shards=%d, event-driven=%v, direct-dispatch=%v)\n",
		*root, srv.Addr(), policy, srv.Framework().Shards(), srv.Framework().EventDriven(),
		srv.Framework().DirectDispatch())

	if *metricsAddr != "" {
		mcfg := metrics.Config{
			Profile:      srv.Framework().Profile(),
			Cache:        srv.Framework().Cache(),
			Deferred:     srv.Framework().Deferred,
			Shed:         srv.Shed,
			EventDriven:  srv.Framework().EventDriven,
			Parked:       srv.Framework().ParkedConns,
			ParkedWrites: srv.Framework().ParkedWrites,
		}
		mcfg.DirectDispatch = srv.Framework().DirectDispatch
		if rc := srv.RespCache(); rc != nil {
			mcfg.RespCache = rc.Stats
		}
		if fio := srv.Framework().AIO(); fio != nil {
			mcfg.CollapsedReads = fio.CollapsedReads
			mcfg.DiskReads = fio.DiskReads
		}
		if l := srv.Framework().Admission(); l != nil {
			mcfg.Admission = l.Snapshot
		}
		ms, err := metrics.NewServer(*metricsAddr, mcfg)
		if err != nil {
			fatal(err)
		}
		defer ms.Close()
		fmt.Printf("metrics on http://%s/metrics\n", ms.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Shutdown()
	if *profile {
		fmt.Println("profile:", srv.Framework().Profile().Snapshot())
	}
	if *debug {
		for _, rec := range srv.Framework().Trace().Snapshot() {
			fmt.Println(rec)
		}
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "copshttp:", err)
	os.Exit(1)
}
