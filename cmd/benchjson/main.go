// Command benchjson converts `go test -bench` output on stdin into a JSON
// snapshot. The Makefile's bench-allocs target pipes the hot-path
// benchmarks through it to produce BENCH_PR1.json, so perf regressions
// diff as structured data instead of free text.
//
//	go test -run TestHotPathAllocs -bench '...' -benchmem . | go run ./cmd/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line: the name, the iteration count, and every
// "value unit" metric pair that followed it (ns/op, B/op, allocs/op,
// MB/s and any b.ReportMetric custom units).
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole snapshot: the run environment lines go test prints
// (goos, goarch, pkg, cpu) plus every benchmark result in order.
type Report struct {
	Env     map[string]string `json:"env"`
	Results []Result          `json:"results"`
}

func main() {
	report := Report{Env: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				report.Results = append(report.Results, r)
			}
		case isEnvLine(line):
			k, v, _ := strings.Cut(line, ":")
			report.Env[k] = strings.TrimSpace(v)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(report.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// isEnvLine reports whether line is one of go test's run-environment
// headers.
func isEnvLine(line string) bool {
	for _, p := range []string{"goos:", "goarch:", "pkg:", "cpu:"} {
		if strings.HasPrefix(line, p) {
			return true
		}
	}
	return false
}

// parseBench parses "BenchmarkName-8  1234  56.7 ns/op  8 B/op ..." into a
// Result. Lines that do not follow the shape (e.g. a failed benchmark)
// are skipped.
func parseBench(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
