// Command nsgen is the N-Server generative design pattern template: the
// CO2P3S equivalent for Go. It reads an option assignment (a preset or a
// JSON configuration), generates the specialized server framework, and
// writes it as a standalone Go package.
//
// Usage:
//
//	nsgen -preset copshttp -out ./generated
//	nsgen -config options.json -pkg myserver -out ./myserver
//	nsgen -preset copsftp -stats
//	nsgen -preset copshttp -scaffold -module example.com/myapp -out ./myapp
//	nsgen -emit-config copshttp   # print a starting configuration
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/options"
)

func main() {
	var (
		preset     = flag.String("preset", "", "option preset: copshttp, copsftp, copshttp-sched, copshttp-overload")
		configPath = flag.String("config", "", "JSON option configuration file (overrides -preset)")
		pkg        = flag.String("pkg", "nserver", "generated package name")
		out        = flag.String("out", "", "output directory (omit to list files only)")
		stats      = flag.Bool("stats", false, "print the generated code distribution (Table 3/4 row)")
		scaffold   = flag.Bool("scaffold", false, "also generate the application skeleton (hooks.go, main.go, go.mod)")
		module     = flag.String("module", "app", "module path for -scaffold")
		emitConfig = flag.String("emit-config", "", "print the JSON configuration for a preset and exit")
		largeFile  = flag.Int64("large-file", 0, "weave the large-file streaming crosscut with this byte threshold; 0 omits it")
		shards     = flag.Int("shards", 0, "weave the multi-reactor sharding crosscut with this many shards; 0 or 1 omits it")
		eventDrive = flag.Bool("event-driven", false, "weave the kernel-event read path crosscut (epoll on linux, goroutine fallback elsewhere)")
		adaptive   = flag.Bool("adaptive-shed", false, "weave the adaptive admission crosscut: an AIMD limiter over sampled queue waits layered on the O9 watermark gate (requires overload control)")
		directDisp = flag.Bool("direct-dispatch", false, "weave the run-to-completion fast-path crosscut: the Server gains a FastPath hook served inline on the reactor goroutine, with misses punted to the queued path (implies -event-driven)")
	)
	flag.Parse()

	if *emitConfig != "" {
		opts, err := lookupPreset(*emitConfig)
		if err != nil {
			fatal(err)
		}
		data, err := json.MarshalIndent(opts, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		return
	}

	var opts options.Options
	switch {
	case *configPath != "":
		data, err := os.ReadFile(*configPath)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(data, &opts); err != nil {
			fatal(fmt.Errorf("parse %s: %w", *configPath, err))
		}
	case *preset != "":
		p, err := lookupPreset(*preset)
		if err != nil {
			fatal(err)
		}
		opts = p
	default:
		fmt.Fprintln(os.Stderr, "nsgen: need -preset or -config (see -help)")
		os.Exit(2)
	}
	if *largeFile > 0 {
		opts = opts.WithLargeFiles(*largeFile)
	}
	if *shards > 0 {
		opts = opts.WithShards(*shards)
	}
	if *eventDrive {
		opts = opts.WithEventDriven(true)
	}
	if *adaptive {
		opts = opts.WithAdaptiveShed(true)
	}
	if *directDisp {
		// Validate ties the fast path to the event-driven substrate; the
		// flag implies it, matching the copshttp binary.
		opts = opts.WithEventDriven(true).WithDirectDispatch(true)
	}

	if *scaffold {
		sc, err := gen.GenerateScaffold(*module, *pkg, opts)
		if err != nil {
			fatal(err)
		}
		if *out == "" {
			fatal(fmt.Errorf("-scaffold requires -out"))
		}
		if err := sc.WriteTo(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("generated application %s in %s:\n", sc.Module, *out)
		fmt.Printf("  %s/           the generated framework (do not edit)\n", sc.Framework.Package)
		fmt.Println("  hooks.go          your application hook methods (edit these)")
		fmt.Println("  main.go           assembly and startup")
		fmt.Printf("build it with: cd %s && go build .\n", *out)
		return
	}

	artifact, err := gen.Generate(*pkg, opts)
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		if err := artifact.WriteTo(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("generated package %s in %s:\n", artifact.Package, *out)
	} else {
		fmt.Printf("generated package %s (dry run):\n", artifact.Package)
	}
	for _, name := range artifact.FileNames() {
		st := gen.CountSource(name, artifact.Files[name])
		fmt.Printf("  %-16s %5d NCSS, %2d types, %2d funcs\n", name, st.NCSS, st.Classes, st.Methods)
	}
	if *stats {
		st := artifact.Stats()
		fmt.Printf("total: %d classes, %d methods, %d NCSS\n", st.Classes, st.Methods, st.NCSS)
	}
}

func lookupPreset(name string) (options.Options, error) {
	switch name {
	case "copshttp":
		return options.COPSHTTP(), nil
	case "copsftp":
		return options.COPSFTP(), nil
	case "copshttp-sched":
		return options.COPSHTTP().WithScheduling(1, 8), nil
	case "copshttp-overload":
		return options.COPSHTTP().WithOverloadControl(20, 5), nil
	}
	return options.Options{}, fmt.Errorf("nsgen: unknown preset %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nsgen:", err)
	os.Exit(1)
}
