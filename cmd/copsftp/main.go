// Command copsftp runs the COPS-FTP server: the paper's event-driven FTP
// server built on the N-Server framework.
//
// Usage:
//
//	copsftp -addr :2121 -root ./export
//	copsftp -addr :2121 -root ./export -user alice:secret -readonly
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/copsftp"
	"repro/internal/ftpproto"
	"repro/internal/metrics"
	"repro/internal/options"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:2121", "control-connection listen address")
		root      = flag.String("root", "", "exported directory (required)")
		users     = flag.String("user", "", "comma-separated user:password pairs")
		noAnon    = flag.Bool("no-anonymous", false, "refuse anonymous logins")
		readOnly  = flag.Bool("readonly", false, "refuse uploads and file management")
		idle      = flag.Duration("idle-timeout", 5*time.Minute, "shut down connections idle this long (O7)")
		largeFile = flag.Int64("large-file-threshold", 1<<20, "stream RETR files of at least this many bytes through pooled buffers without full-file reads; 0 disables")
		shards    = flag.Int("shards", 0, "runtime shards (reactor + event pool per shard); 0 = one per CPU, 1 = the paper's single-reactor layout")
		eventDrv  = flag.Bool("event-driven", false, "park idle control connections in a per-shard kernel epoll set instead of a reader goroutine each (Linux; elsewhere the goroutine path is the transparent fallback)")
		adaptive  = flag.Bool("adaptive-shed", false, "postpone accepts under overload with the AIMD admission limiter (enables O9 with watermarks 20,5 as the backstop)")
		profile   = flag.Bool("profile", false, "enable performance profiling (O11)")
		mAddr     = flag.String("metrics-addr", "", "serve Prometheus/JSON metrics on this address (/metrics, /metrics.json); empty disables")
		debug     = flag.Bool("debug", false, "generate in debug mode (O10)")
	)
	flag.Parse()
	if *root == "" {
		fmt.Fprintln(os.Stderr, "copsftp: -root is required")
		os.Exit(2)
	}

	store := ftpproto.NewUserStore(!*noAnon)
	if *users != "" {
		for _, pair := range strings.Split(*users, ",") {
			u, p, ok := strings.Cut(pair, ":")
			if !ok {
				fmt.Fprintf(os.Stderr, "copsftp: bad -user entry %q\n", pair)
				os.Exit(2)
			}
			store.Add(u, p)
		}
	}

	opts := options.COPSFTP()
	opts.IdleTimeout = *idle
	opts.ShutdownLongIdle = *idle > 0
	if *largeFile > 0 {
		opts = opts.WithLargeFiles(*largeFile)
	}
	if *profile || *mAddr != "" {
		opts.Profiling = true
	}
	opts.Shards = *shards
	opts.EventDriven = *eventDrv
	if *adaptive {
		opts = opts.WithOverloadControl(20, 5).WithAdaptiveShed(true)
	}
	if *debug {
		opts.Mode = options.Debug
	}

	srv, err := copsftp.New(copsftp.Config{
		Root:     *root,
		Options:  &opts,
		Users:    store,
		ReadOnly: *readOnly,
	})
	if err != nil {
		fatal(err)
	}
	if err := srv.ListenAndServe(*addr); err != nil {
		fatal(err)
	}
	fmt.Printf("COPS-FTP exporting %s on %s (readonly=%v, shards=%d, event-driven=%v)\n",
		*root, srv.Addr(), *readOnly, srv.Framework().Shards(), srv.Framework().EventDriven())

	if *mAddr != "" {
		mcfg := metrics.Config{
			Profile:      srv.Framework().Profile(),
			Cache:        srv.Framework().Cache(),
			Deferred:     srv.Framework().Deferred,
			EventDriven:  srv.Framework().EventDriven,
			Parked:       srv.Framework().ParkedConns,
			ParkedWrites: srv.Framework().ParkedWrites,
		}
		if l := srv.Framework().Admission(); l != nil {
			mcfg.Admission = l.Snapshot
		}
		ms, err := metrics.NewServer(*mAddr, mcfg)
		if err != nil {
			fatal(err)
		}
		defer ms.Close()
		fmt.Printf("metrics on http://%s/metrics\n", ms.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Shutdown()
	if *debug {
		for _, rec := range srv.Framework().Trace().Snapshot() {
			fmt.Println(rec)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "copsftp:", err)
	os.Exit(1)
}
