// Command loadgen is the live-TCP client workload generator of the
// paper's experiments: each simulated Web client repeatedly establishes a
// connection, issues 5 HTTP requests on it (simulating HTTP/1.1
// persistent connections) with a 20ms pause after each page, then
// terminates the connection. It reports throughput and the Jain fairness
// index across clients.
//
// With -rate the generator switches from the closed loop above to an
// open loop: a token bucket injects requests at the given rate no matter
// how fast the server answers (so server slowdown shows up as latency,
// not as reduced offered load), and the report adds p50/p95/p99 latency
// and the achieved throughput against the offered rate. Latency is
// measured from each arrival's scheduled send time, not from the moment
// a worker wrote the request — the coordinated-omission-honest reading.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:8080 -clients 64 -duration 30s
//	loadgen -addr 127.0.0.1:8080 -clients 64 -specweb 4   # SpecWeb99 paths
//	loadgen -addr 127.0.0.1:8080 -clients 64 -rate 2000 -duration 30s
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "server address")
		clients  = flag.Int("clients", 16, "concurrent simulated clients")
		duration = flag.Duration("duration", 10*time.Second, "measurement duration")
		reqs     = flag.Int("reqs", workload.RequestsPerConn, "requests per connection")
		think    = flag.Duration("think", workload.ThinkTimeMs*time.Millisecond, "pause after each page")
		path     = flag.String("path", "/", "request path (ignored with -specweb)")
		specweb  = flag.Int("specweb", 0, "sample paths from a SpecWeb99-like set of N directories")
		seed     = flag.Int64("seed", 1, "random seed")
		rate     = flag.Float64("rate", 0, "open-loop mode: offer this many requests/sec through a token bucket (0 keeps the closed loop)")
	)
	flag.Parse()

	var pick func(rng *rand.Rand) string
	if *specweb > 0 {
		fs := workload.GenerateFileSet(*specweb)
		sampler := workload.NewSampler(fs, *seed)
		var mu sync.Mutex
		pick = func(*rand.Rand) string {
			mu.Lock()
			defer mu.Unlock()
			return sampler.Pick().Path
		}
	} else {
		pick = func(*rand.Rand) string { return *path }
	}

	if *rate > 0 {
		openLoop(*addr, *clients, *rate, *duration, pick, *seed)
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	responses := make([]int, *clients)
	var respTimes stats.Series
	var mu sync.Mutex
	var wg sync.WaitGroup

	start := time.Now()
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(id)))
			for ctx.Err() == nil {
				runConn(ctx, *addr, *reqs, *think, pick, rng, func(rt time.Duration) {
					mu.Lock()
					responses[id]++
					respTimes.AddDuration(rt)
					mu.Unlock()
				})
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := 0
	for _, r := range responses {
		total += r
	}
	fmt.Printf("clients=%d duration=%v responses=%d\n", *clients, elapsed.Round(time.Millisecond), total)
	fmt.Printf("throughput: %s responses/sec\n", stats.FormatRate(float64(total)/elapsed.Seconds()))
	fmt.Printf("fairness (Jain index): %.3f\n", stats.JainIndexInts(responses))
	fmt.Printf("response time: mean=%v p50=%v p99=%v\n",
		time.Duration(respTimes.Mean()*float64(time.Second)).Round(time.Microsecond),
		time.Duration(respTimes.Percentile(0.5)*float64(time.Second)).Round(time.Microsecond),
		time.Duration(respTimes.Percentile(0.99)*float64(time.Second)).Round(time.Microsecond))
	if total == 0 {
		os.Exit(1)
	}
}

// openLoop offers requests at a fixed rate through a token bucket,
// independent of how fast the server answers. Each of the worker
// connections consumes arrival tokens and issues one request per token;
// when all workers are stuck waiting on the server, arrivals accumulate
// in the bucket (up to one second's worth) and then count as dropped —
// the open-loop signature where overload shows up as latency and loss,
// never as politely reduced load.
//
// Latency is coordinated-omission honest: every token carries the
// intended send time of its arrival on the fixed schedule (start +
// k/rate), and each request's latency is measured from that intent, not
// from the moment a worker finally got around to writing the bytes. A
// stalled server therefore charges its stall to every request queued
// behind it, exactly as its users would experience — measuring from the
// actual write would silently excuse the queueing delay the open loop
// exists to expose.
func openLoop(addr string, clients int, rate float64, duration time.Duration,
	pick func(*rand.Rand) string, seed int64) {
	ctx, cancel := context.WithTimeout(context.Background(), duration)
	defer cancel()

	burst := int(rate)
	if burst < 1 {
		burst = 1
	}
	tokens := make(chan time.Time, burst)
	var offered, dropped atomic.Int64
	schedStart := time.Now()
	go func() {
		const interval = 5 * time.Millisecond
		tk := time.NewTicker(interval)
		defer tk.Stop()
		arrivals := int64(0)
		for {
			select {
			case <-ctx.Done():
				return
			case <-tk.C:
			}
			// Mint every arrival the schedule owes by now, each stamped
			// with its intended send time — ticker lag is the generator's
			// own queueing delay and counts like any other.
			due := int64(time.Since(schedStart).Seconds() * rate)
			for ; arrivals < due; arrivals++ {
				offered.Add(1)
				intended := schedStart.Add(time.Duration(float64(arrivals) / rate * float64(time.Second)))
				select {
				case tokens <- intended:
				default:
					dropped.Add(1)
				}
			}
		}
	}()

	var mu sync.Mutex
	var lat stats.Series
	total := 0
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(id)))
			var conn net.Conn
			var r *bufio.Reader
			defer func() {
				if conn != nil {
					conn.Close()
				}
			}()
			for {
				var intended time.Time
				select {
				case <-ctx.Done():
					return
				case intended = <-tokens:
				}
				if conn == nil {
					d := net.Dialer{Timeout: 5 * time.Second}
					c, err := d.DialContext(ctx, "tcp", addr)
					if err != nil {
						continue
					}
					conn, r = c, bufio.NewReader(c)
				}
				conn.SetDeadline(time.Now().Add(30 * time.Second))
				if _, err := fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: loadgen\r\n\r\n", pick(rng)); err != nil {
					conn.Close()
					conn = nil
					continue
				}
				if !readResponse(r) {
					conn.Close()
					conn = nil
					continue
				}
				mu.Lock()
				total++
				// From the scheduled arrival, so bucket wait and dial time
				// are charged to the request (no coordinated omission).
				lat.AddDuration(time.Since(intended))
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	pct := func(p float64) time.Duration {
		return time.Duration(lat.Percentile(p) * float64(time.Second)).Round(time.Microsecond)
	}
	fmt.Printf("open loop: offered=%s req/s achieved=%s req/s (workers=%d duration=%v)\n",
		stats.FormatRate(rate), stats.FormatRate(float64(total)/elapsed.Seconds()),
		clients, elapsed.Round(time.Millisecond))
	fmt.Printf("arrivals: offered=%d completed=%d dropped=%d\n", offered.Load(), total, dropped.Load())
	fmt.Printf("latency: p50=%v p95=%v p99=%v mean=%v\n",
		pct(0.5), pct(0.95), pct(0.99),
		time.Duration(lat.Mean()*float64(time.Second)).Round(time.Microsecond))
	if total == 0 {
		os.Exit(1)
	}
}

// runConn performs one connect / N-requests / disconnect cycle.
func runConn(ctx context.Context, addr string, reqs int, think time.Duration,
	pick func(*rand.Rand) string, rng *rand.Rand, record func(time.Duration)) {
	d := net.Dialer{Timeout: 5 * time.Second}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		// Connection refused or timed out (e.g. overload gate closed):
		// back off briefly as a real client would.
		select {
		case <-ctx.Done():
		case <-time.After(100 * time.Millisecond):
		}
		return
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	for i := 0; i < reqs && ctx.Err() == nil; i++ {
		p := pick(rng)
		start := time.Now()
		conn.SetDeadline(time.Now().Add(30 * time.Second))
		if _, err := fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: loadgen\r\n\r\n", p); err != nil {
			return
		}
		if !readResponse(r) {
			return
		}
		record(time.Since(start))
		select {
		case <-ctx.Done():
			return
		case <-time.After(think):
		}
	}
}

// readResponse consumes one HTTP response (status line, headers, body).
func readResponse(r *bufio.Reader) bool {
	line, err := r.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "HTTP/") {
		return false
	}
	contentLength := 0
	for {
		h, err := r.ReadString('\n')
		if err != nil {
			return false
		}
		h = strings.TrimSpace(h)
		if h == "" {
			break
		}
		if k, v, ok := strings.Cut(h, ":"); ok && strings.EqualFold(k, "Content-Length") {
			contentLength, _ = strconv.Atoi(strings.TrimSpace(v))
		}
	}
	if contentLength > 0 {
		if _, err := io.CopyN(io.Discard, r, int64(contentLength)); err != nil {
			return false
		}
	}
	return true
}
