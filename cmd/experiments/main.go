// Command experiments regenerates every table and figure of the paper's
// evaluation section.
//
// Usage:
//
//	experiments -all                 # everything, full virtual durations
//	experiments -table1 -table2
//	experiments -table3 -table4 -repo .
//	experiments -fig3 -duration 1m   # shorter virtual measurement
//	experiments -fig5 -fig6
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every table and figure")
		table1   = flag.Bool("table1", false, "print Table 1 (options and values)")
		table2   = flag.Bool("table2", false, "print Table 2 (crosscut matrix)")
		table3   = flag.Bool("table3", false, "measure Table 3 (COPS-FTP code distribution)")
		table4   = flag.Bool("table4", false, "measure Table 4 (COPS-HTTP code distribution)")
		fig3     = flag.Bool("fig3", false, "run Fig. 3 (throughput vs clients)")
		fig4     = flag.Bool("fig4", false, "run Fig. 4 (fairness vs clients; shares Fig. 3's runs)")
		fig5     = flag.Bool("fig5", false, "run Fig. 5 (differentiated service levels)")
		fig6     = flag.Bool("fig6", false, "run Fig. 6 (overload control response times)")
		ablation = flag.Bool("cache-ablation", false, "run the O6 cache-policy ablation")
		repo     = flag.String("repo", ".", "repository root (for Tables 3-4)")
		duration = flag.Duration("duration", 5*time.Minute, "virtual measurement duration per point (paper: 5m)")
		warmup   = flag.Duration("warmup", 20*time.Second, "virtual warmup discarded before measuring")
		seed     = flag.Int64("seed", 1, "workload random seed")
		clients  = flag.Int("fig5-clients", 64, "clients per content class for Fig. 5")
	)
	flag.Parse()
	if *all {
		*table1, *table2, *table3, *table4 = true, true, true, true
		*fig3, *fig4, *fig5, *fig6, *ablation = true, true, true, true, true
	}
	if !(*table1 || *table2 || *table3 || *table4 || *fig3 || *fig4 || *fig5 || *fig6 || *ablation) {
		fmt.Fprintln(os.Stderr, "experiments: nothing selected (try -all or -help)")
		os.Exit(2)
	}

	p := experiments.Default()
	p.Duration = *duration
	p.Warmup = *warmup
	p.Seed = *seed

	out := os.Stdout
	if *table1 {
		experiments.PrintTable1(out)
		fmt.Fprintln(out)
	}
	if *table2 {
		experiments.PrintTable2(out)
		fmt.Fprintln(out)
	}
	if *table3 {
		rows, err := experiments.Table3(*repo)
		if err != nil {
			fatal(err)
		}
		experiments.PrintCodeTable(out,
			"Table 3 — The code distribution of COPS-FTP (measured vs paper)", rows)
		fmt.Fprintln(out, "  note: the paper reused Apache FTPServer; this reproduction builds its")
		fmt.Fprintln(out, "  own FTP protocol library from scratch, so the reused/added rows measure")
		fmt.Fprintln(out, "  the substituted components (see DESIGN.md).")
		fmt.Fprintln(out)
	}
	if *table4 {
		rows, err := experiments.Table4(*repo)
		if err != nil {
			fatal(err)
		}
		experiments.PrintCodeTable(out,
			"Table 4 — The code distribution of COPS-HTTP (measured vs paper)", rows)
		fmt.Fprintln(out)
	}
	var figPts []experiments.Fig3Point
	if *fig3 || *fig4 {
		fmt.Fprintf(out, "running Fig. 3/4 sweep (%v virtual per point, %d points x 2 servers)...\n",
			p.Duration, len(experiments.DefaultClientCounts))
		figPts = experiments.RunFig3(p, nil)
	}
	if *fig3 {
		experiments.PrintFig3(out, figPts)
		fmt.Fprintln(out)
	}
	if *fig4 {
		experiments.PrintFig4(out, figPts)
		fmt.Fprintln(out)
	}
	if *fig5 {
		experiments.PrintFig5(out, experiments.RunFig5(p, *clients, nil))
		fmt.Fprintln(out)
	}
	if *fig6 {
		experiments.PrintFig6(out, experiments.RunFig6(p, nil))
		fmt.Fprintln(out)
	}
	if *ablation {
		experiments.PrintCacheAblation(out, 64, experiments.RunCacheAblation(p, 64))
		fmt.Fprintln(out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
