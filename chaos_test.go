package repro

// The chaos suite: every test drives a live server through
// internal/faultnet with a fixed seed, so the broken-network schedule is
// deterministic and replays byte-for-byte. Each test pins one defense of
// the hardened serve pipeline: read-deadline teardown of stalled peers,
// write completion through partial writes, mid-stream RST isolation,
// corrupted-byte isolation, the balancer's failover under refusals, and
// the O9 load-shedding 503 fast path. `make chaos` runs exactly these
// tests under -race.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/copshttp"
	"repro/internal/events"
	"repro/internal/faultnet"
	"repro/internal/metrics"
	"repro/internal/nserver"
	"repro/internal/options"
	"repro/internal/reactor"
)

// chaosRoot materializes a small document root: an index page and a body
// large enough that mid-stream faults land inside the response.
func chaosRoot(t *testing.T) (dir string, big []byte) {
	t.Helper()
	dir = t.TempDir()
	big = bytes.Repeat([]byte("0123456789abcdef"), 4096) // 64 KiB
	if err := os.WriteFile(filepath.Join(dir, "index.html"), []byte("<html>ok</html>\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "big.bin"), big, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, big
}

// startChaosHTTP starts COPS-HTTP behind a faultnet listener.
func startChaosHTTP(t *testing.T, cfg copshttp.Config, s faultnet.Scenario) (*copshttp.Server, *faultnet.Listener, string) {
	t.Helper()
	srv, err := copshttp.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := faultnet.Wrap(inner, s)
	if err := srv.Framework().Start(ln); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)
	return srv, ln, ln.Addr().String()
}

// httpGet performs one HTTP/1.0-style exchange and returns the raw
// response (status line, headers and body) read to EOF.
func httpGet(t *testing.T, addr, path string, timeout time.Duration) ([]byte, error) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	fmt.Fprintf(conn, "GET %s HTTP/1.0\r\n\r\n", path)
	return io.ReadAll(conn)
}

// TestChaosStalledClientTornDownByDeadline: the scenario freezes the
// server-side read stream after the first request, exactly what a
// slowloris peer looks like from inside readLoop. With ReadTimeout armed
// the injected stall surfaces as a timeout at the deadline and the
// connection is torn down instead of parking a Communicator for the
// stall's full five seconds.
func TestChaosStalledClientTornDownByDeadline(t *testing.T) {
	dir, _ := chaosRoot(t)
	opts := options.COPSHTTP().WithHardening(100*time.Millisecond, time.Second, 1<<20)
	_, ln, addr := startChaosHTTP(t,
		copshttp.Config{DocRoot: dir, Options: &opts},
		faultnet.Scenario{Seed: 1, StallAfterBytes: 8, StallDuration: 5 * time.Second},
	)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(3 * time.Second))
	// Keep-alive request: the response arrives, then the server's next
	// read hits the injected stall.
	fmt.Fprint(conn, "GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n")
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil || !strings.Contains(line, "200") {
		t.Fatalf("first response: %q err=%v", line, err)
	}
	// The server must close the stalled connection well before the 5s
	// stall ends; the client observes EOF/reset.
	start := time.Now()
	if _, err := io.Copy(io.Discard, br); err != nil && !strings.Contains(err.Error(), "reset") {
		t.Fatalf("draining stalled conn: %v", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("stalled connection held for %v; deadline defense missing", waited)
	}
	if ln.Stats().Stalls.Load() == 0 {
		t.Fatal("scenario injected no stall — test proves nothing")
	}
	// The server is still healthy for clean clients.
	resp, err := httpGet(t, addr, "/index.html", 3*time.Second)
	if err != nil || !bytes.Contains(resp, []byte("200")) {
		t.Fatalf("post-stall request failed: err=%v resp=%.60q", err, resp)
	}
}

// TestChaosPartialWritesDeliverFullResponse: the peer window is clogged —
// every server write moves at most 7 bytes. The pooled writev send path
// must still deliver the complete 64 KiB body, byte for byte.
func TestChaosPartialWritesDeliverFullResponse(t *testing.T) {
	dir, big := chaosRoot(t)
	opts := options.COPSHTTP().WithHardening(0, 10*time.Second, 0)
	_, _, addr := startChaosHTTP(t,
		copshttp.Config{DocRoot: dir, Options: &opts},
		faultnet.Scenario{Seed: 2, MaxWritePerCall: 7},
	)
	resp, err := httpGet(t, addr, "/big.bin", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(resp, []byte("\r\n\r\n"))
	if i < 0 {
		t.Fatalf("no header/body split in %.80q", resp)
	}
	if body := resp[i+4:]; !bytes.Equal(body, big) {
		t.Fatalf("body corrupted under partial writes: got %d bytes, want %d", len(body), len(big))
	}
}

// TestChaosMidStreamRSTIsOneConnectionsProblem: the transport aborts with
// a hard reset partway through the big response. The failure must stay on
// that connection — the next clean request is served normally.
func TestChaosMidStreamRSTIsOneConnectionsProblem(t *testing.T) {
	dir, big := chaosRoot(t)
	opts := options.COPSHTTP().WithHardening(time.Second, time.Second, 1<<20)
	_, ln, addr := startChaosHTTP(t,
		copshttp.Config{DocRoot: dir, Options: &opts},
		faultnet.Scenario{Seed: 3, RSTAfterBytes: 2048},
	)
	resp, err := httpGet(t, addr, "/big.bin", 5*time.Second)
	if err == nil && len(resp) > len(big) {
		t.Fatal("64 KiB response survived a 2 KiB RST budget — no fault injected")
	}
	if ln.Stats().Resets.Load() == 0 {
		t.Fatal("scenario injected no reset")
	}
	// A small exchange fits under the fresh connection's byte budget.
	resp, err = httpGet(t, addr, "/index.html", 3*time.Second)
	if err != nil || !bytes.Contains(resp, []byte(" 200 ")) {
		t.Fatalf("server unhealthy after mid-stream RST: err=%v resp=%.60q", err, resp)
	}
}

// TestChaosCorruptedBytesAreIsolated: every request chunk reaches the
// decoder with one bit flipped. Whatever each mangled request turns into
// (400, 404, 405 or a teardown), no connection may wedge and the server
// must keep draining them — under -race this also proves the error paths
// are data-race free.
func TestChaosCorruptedBytesAreIsolated(t *testing.T) {
	dir, _ := chaosRoot(t)
	opts := options.COPSHTTP().WithHardening(time.Second, time.Second, 1<<20)
	srv, ln, addr := startChaosHTTP(t,
		copshttp.Config{DocRoot: dir, Options: &opts},
		faultnet.Scenario{Seed: 4, CorruptEvery: 1},
	)
	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Every exchange must terminate (response or close) inside
			// the deadline; a hung read fails the whole test.
			if _, err := httpGet(t, addr, fmt.Sprintf("/index.html?c=%d", i), 3*time.Second); err != nil &&
				!strings.Contains(err.Error(), "reset") && !strings.Contains(err.Error(), "EOF") {
				t.Errorf("client %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if ln.Stats().Corrupted.Load() < clients {
		t.Fatalf("only %d corrupted chunks for %d clients", ln.Stats().Corrupted.Load(), clients)
	}
	// All mangled connections drained; nothing leaked.
	deadline := time.Now().Add(3 * time.Second)
	for srv.Framework().ActiveConns() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d connections wedged after corruption", srv.Framework().ActiveConns())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// lineCodec mirrors the cluster tests' newline codec for chaos backends.
type chaosLineCodec struct{ id string }

func (c chaosLineCodec) Decode(buf []byte) (any, int, error) {
	if i := bytes.IndexByte(buf, '\n'); i >= 0 {
		return string(buf[:i]), i + 1, nil
	}
	return nil, 0, nil
}

func (c chaosLineCodec) Encode(reply any) ([]byte, error) {
	return append([]byte(reply.(string)), '\n'), nil
}

// TestChaosBalancerRidesThroughBackendFaults: one backend is a dead
// address, the live one answers through clogged partial writes. The
// deduped retry budget plus the circuit breaker must serve every client
// anyway.
func TestChaosBalancerRidesThroughBackendFaults(t *testing.T) {
	srv, err := nserver.New(nserver.Config{
		Options: options.Options{
			DispatcherThreads:  1,
			SeparateThreadPool: true,
			EventThreads:       2,
			Codec:              true,
		},
		App: nserver.AppFuncs{Request: func(c *nserver.Conn, req any) {
			_ = c.Reply("live:" + req.(string))
		}},
		Codec: chaosLineCodec{},
	})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := faultnet.Wrap(inner, faultnet.Scenario{Seed: 5, MaxWritePerCall: 3})
	if err := srv.Start(ln); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)

	// A briefly bound, then released port: dials are refused.
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := deadLn.Addr().String()
	deadLn.Close()

	lb, err := cluster.New(cluster.Config{
		Backends: []string{dead, ln.Addr().String()},
		CoolDown: time.Millisecond,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := lb.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lb.Shutdown)

	for i := 0; i < 6; i++ {
		conn, err := net.Dial("tcp", lb.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		fmt.Fprintf(conn, "req-%d\n", i)
		line, err := bufio.NewReader(conn).ReadString('\n')
		conn.Close()
		if err != nil || !strings.HasPrefix(line, "live:req-") {
			t.Fatalf("client %d through faulty cluster: line=%q err=%v", i, line, err)
		}
	}
}

// chaosQueue is a test-controlled queue length for the O9 watermark
// controller: the chaos suite pauses and resumes the accept gate
// deterministically instead of racing real queue depths.
type chaosQueue struct {
	mu sync.Mutex
	n  int
}

func (q *chaosQueue) QueueLen() int { q.mu.Lock(); defer q.mu.Unlock(); return q.n }
func (q *chaosQueue) set(n int)     { q.mu.Lock(); q.n = n; q.mu.Unlock() }

// TestChaosOverloadShedsPrebuilt503: with the overload gate paused, the
// shed fast path must answer immediately with the pooled 503 carrying
// Retry-After, and normal service must resume once the gate reopens.
func TestChaosOverloadShedsPrebuilt503(t *testing.T) {
	dir, _ := chaosRoot(t)
	opts := options.COPSHTTP().WithOverloadControl(20, 5).
		WithHardening(time.Second, time.Second, 1<<20)
	srv, _, addr := startChaosHTTP(t,
		copshttp.Config{
			DocRoot:        dir,
			Options:        &opts,
			ShedOnOverload: true,
			RetryAfter:     7 * time.Second,
		},
		faultnet.Scenario{Seed: 6}, // transparent: the fault is the overload itself
	)
	q := &chaosQueue{}
	if err := srv.Framework().Overload().Watch("chaos", q, 10, 5); err != nil {
		t.Fatal(err)
	}

	q.set(100) // force the gate shut
	resp, err := httpGet(t, addr, "/index.html", 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(resp, []byte(" 503 ")) {
		t.Fatalf("paused gate did not shed: %.80q", resp)
	}
	if !bytes.Contains(resp, []byte("Retry-After: 7")) {
		t.Fatalf("shed 503 missing Retry-After: %.200q", resp)
	}
	if srv.Shed() == 0 {
		t.Fatal("shed counter not incremented")
	}

	q.set(0) // drain below the low watermark
	deadline := time.Now().Add(3 * time.Second)
	for {
		resp, err = httpGet(t, addr, "/index.html", 3*time.Second)
		if err == nil && bytes.Contains(resp, []byte(" 200 ")) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("service never resumed after gate reopened: err=%v resp=%.80q", err, resp)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosAdaptiveLimiterShedsByPriorityAndRecovers drives the adaptive
// admission limiter through a full congestion storm while the transport
// clogs every write to a handful of bytes (the overload itself is the
// principal fault, as in the watermark chaos test). The test pins the
// limiter's three chaos guarantees: shedding is priority-aware end to
// end (a portal-class connection is re-admitted and served while
// homepage-class connections get the 503 with the limiter's dynamic
// Retry-After), the per-level shed counters stay monotonic throughout,
// and the limit recovers after the storm so admission can never latch
// shut.
func TestChaosAdaptiveLimiterShedsByPriorityAndRecovers(t *testing.T) {
	dir, _ := chaosRoot(t)
	opts := options.COPSHTTP().
		WithOverloadControl(20, 5).
		WithHardening(10*time.Second, 5*time.Second, 1<<20).
		WithAdaptiveShed(true)
	// portal marks the next classified connection high-priority; the
	// classifier runs on the raw conn before any bytes are read.
	var portal atomic.Bool
	srv, ln, addr := startChaosHTTP(t,
		copshttp.Config{
			DocRoot:        dir,
			Options:        &opts,
			ShedOnOverload: true,
			RetryAfter:     7 * time.Second, // static fallback; the limiter overrides it
			ShedPriority: func(net.Conn) events.Priority {
				if portal.Load() {
					return 0
				}
				return 1
			},
		},
		faultnet.Scenario{Seed: 41, MaxWritePerCall: 9},
	)
	lim := srv.Framework().Admission()
	if lim == nil {
		t.Fatal("AdaptiveShed selected but Admission() is nil")
	}

	// Establish the no-load queue-wait baseline, exactly as a healthy
	// server's sampled submissions would.
	for i := 0; i < 32; i++ {
		lim.Observe(time.Millisecond)
	}

	// Park keep-alive connections so the in-flight count stays above the
	// limit once the storm drives it down.
	const held = 8
	for i := 0; i < held; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		c.SetDeadline(time.Now().Add(10 * time.Second))
		fmt.Fprint(c, "GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n")
		if line, err := bufio.NewReader(c).ReadString('\n'); err != nil || !strings.Contains(line, "200") {
			t.Fatalf("held conn %d: %q err=%v", i, line, err)
		}
	}

	// The storm: congested queue-wait samples cut the limit
	// multiplicatively (rate-limited, so this takes a dozen-odd decrease
	// intervals) while the per-level shed counters must never go
	// backwards. The cadence matches the 1-in-16 sampling of a loaded
	// pipeline — flooding samples orders of magnitude faster would let
	// the baseline's slow upward creep absorb the congestion signal.
	prevShed := [2]uint64{lim.ShedCount(0), lim.ShedCount(1)}
	deadline := time.Now().Add(15 * time.Second)
	for lim.Limit() > held-2 {
		if time.Now().After(deadline) {
			t.Fatalf("limit stuck at %d after congested storm", lim.Limit())
		}
		lim.Observe(80 * time.Millisecond)
		for i, lvl := range []int{0, 1} {
			if n := lim.ShedCount(lvl); n < prevShed[i] {
				t.Fatalf("level-%d shed counter went backwards: %d -> %d", lvl, prevShed[i], n)
			} else {
				prevShed[i] = n
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !lim.Engaged() {
		t.Fatal("limit below max but limiter not engaged")
	}

	// A homepage-class connection is shed with the 503 fast path; the
	// Retry-After value is the limiter's backoff horizon, not the static
	// fallback. The shed reply races the RST a close-with-unread-request
	// provokes (the fast path never reads the doomed request), and the
	// clogged transport widens that race — so retry until the 503 bytes
	// land. Keep observing congestion so the recovery clock cannot
	// reopen admission mid-assertion.
	var resp []byte
	var err error
	shedBy := time.Now().Add(5 * time.Second)
	for {
		lim.Observe(80 * time.Millisecond)
		resp, _ = httpGet(t, addr, "/index.html", 3*time.Second)
		if bytes.Contains(resp, []byte(" 503 ")) {
			break
		}
		if time.Now().After(shedBy) {
			t.Fatalf("engaged limiter never shed a homepage-class conn: %.120q", resp)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !bytes.Contains(resp, []byte("Retry-After: ")) {
		t.Fatalf("shed 503 missing Retry-After: %.200q", resp)
	}
	if lim.ShedCount(1) == 0 {
		t.Fatal("homepage-class shed not counted at level 1")
	}

	// A portal-class connection is re-admitted through the same overload
	// and fully served.
	portal.Store(true)
	lim.Observe(80 * time.Millisecond)
	resp, err = httpGet(t, addr, "/index.html", 3*time.Second)
	portal.Store(false)
	if err != nil || !bytes.Contains(resp, []byte(" 200 ")) {
		t.Fatalf("portal-class conn not re-admitted under shed: err=%v resp=%.120q", err, resp)
	}
	if snap := lim.Snapshot(); snap.Admitted[0] == 0 {
		t.Fatalf("portal re-admission not counted: %+v", snap)
	}

	// Post-storm: healthy samples grow the limit additively and service
	// resumes — the limiter never latches admission shut.
	for i := 0; i < 4096 && lim.Limit() <= held; i++ {
		lim.Observe(time.Millisecond)
	}
	if lim.Limit() <= held {
		t.Fatalf("limit did not recover past %d held conns: %d", held, lim.Limit())
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp, err = httpGet(t, addr, "/index.html", 3*time.Second)
		if err == nil && bytes.Contains(resp, []byte(" 200 ")) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("service never resumed post-storm: err=%v resp=%.120q", err, resp)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if ln.Stats().Accepted.Load() == 0 {
		t.Fatal("faultnet accepted nothing — chaos never saw traffic")
	}
}

// TestChaosPanickingHooksAreIsolated: a Handle hook that panics on one
// poisoned request and a Decode hook that panics on one poisoned byte
// sequence must each take down only their own connection.
func TestChaosPanickingHooksAreIsolated(t *testing.T) {
	srv, err := nserver.New(nserver.Config{
		Options: options.Options{
			DispatcherThreads:  1,
			SeparateThreadPool: true,
			EventThreads:       2,
			Codec:              true,
		},
		App: nserver.AppFuncs{Request: func(c *nserver.Conn, req any) {
			if req.(string) == "boom" {
				panic("poisoned request")
			}
			_ = c.Reply("ok:" + req.(string))
		}},
		Codec: panickyCodec{},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := faultnet.Listen("127.0.0.1:0", faultnet.Scenario{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(ln); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)
	addr := ln.Addr().String()

	exchange := func(line string) (string, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(3 * time.Second))
		fmt.Fprint(conn, line+"\n")
		return bufio.NewReader(conn).ReadString('\n')
	}

	if _, err := exchange("boom"); err == nil {
		t.Fatal("panicking Handle kept its connection open")
	}
	if _, err := exchange("DECODE-PANIC"); err == nil {
		t.Fatal("panicking Decode kept its connection open")
	}
	got, err := exchange("healthy")
	if err != nil || got != "ok:healthy\n" {
		t.Fatalf("server unhealthy after hook panics: got=%q err=%v", got, err)
	}
}

// panickyCodec panics while decoding a poisoned line; everything else is
// the plain newline codec.
type panickyCodec struct{}

func (panickyCodec) Decode(buf []byte) (any, int, error) {
	if bytes.HasPrefix(buf, []byte("DECODE-PANIC")) {
		panic("poisoned bytes")
	}
	if i := bytes.IndexByte(buf, '\n'); i >= 0 {
		return string(buf[:i]), i + 1, nil
	}
	return nil, 0, nil
}

func (panickyCodec) Encode(reply any) ([]byte, error) {
	return append([]byte(reply.(string)), '\n'), nil
}

// TestChaosMetricsStayServiceable: the admin metrics plane must remain
// serviceable, and every exported counter monotonic, while the data plane
// is being torn apart by mid-stream RSTs and read stalls. The metrics
// listener is deliberately NOT behind faultnet — the point is that chaos
// on the serve pipeline cannot starve or corrupt the observability
// endpoint that operators are using to diagnose that very chaos.
func TestChaosMetricsStayServiceable(t *testing.T) {
	dir, _ := chaosRoot(t)
	opts := options.COPSHTTP().
		WithOverloadControl(20, 5).
		WithHardening(200*time.Millisecond, 500*time.Millisecond, 1<<20)
	opts.Profiling = true
	srv, ln, addr := startChaosHTTP(t,
		copshttp.Config{
			DocRoot:        dir,
			Options:        &opts,
			ShedOnOverload: true,
			RetryAfter:     time.Second,
		},
		faultnet.Scenario{
			Seed:            11,
			StallAfterBytes: 16, // every conn's read after the first request stalls
			StallDuration:   2 * time.Second,
			RSTAfterBytes:   24 << 10, // big.bin replies die mid-stream
		},
	)
	ms, err := metrics.NewServer("127.0.0.1:0", metrics.Config{
		Profile:  srv.Framework().Profile(),
		Cache:    srv.Framework().Cache(),
		Deferred: srv.Framework().Deferred,
		Shed:     srv.Shed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })

	scrape := func() (map[string]float64, []byte) {
		t.Helper()
		raw, err := httpGet(t, ms.Addr().String(), "/metrics", 3*time.Second)
		if err != nil {
			t.Fatalf("metrics endpoint unreachable mid-chaos: %v", err)
		}
		if !bytes.Contains(raw, []byte(" 200 ")) {
			t.Fatalf("metrics endpoint unhealthy: %.120q", raw)
		}
		_, body, ok := bytes.Cut(raw, []byte("\r\n\r\n"))
		if !ok {
			t.Fatalf("unframed metrics response: %.120q", raw)
		}
		return metrics.ParseCounters(string(body)), body
	}

	monotonic := []string{
		"nserver_connections_accepted_total",
		"nserver_requests_total",
		"nserver_sent_bytes_total",
		"nserver_read_bytes_total",
		"nserver_events_processed_total",
	}
	prev, _ := scrape()
	var body []byte
	for round := 0; round < 5; round++ {
		for i := 0; i < 4; i++ {
			// Both may fail mid-stream — that is the chaos, not the assert.
			_, _ = httpGet(t, addr, "/big.bin", time.Second)
			_, _ = httpGet(t, addr, "/index.html", time.Second)
		}
		var cur map[string]float64
		cur, body = scrape()
		for _, k := range monotonic {
			if cur[k] < prev[k] {
				t.Fatalf("round %d: counter %s went backwards: %v -> %v", round, k, prev[k], cur[k])
			}
		}
		prev = cur
	}

	if prev["nserver_connections_accepted_total"] == 0 {
		t.Fatal("no connections observed — chaos traffic never reached the server")
	}
	if ln.Stats().Resets.Load() == 0 && ln.Stats().Stalls.Load() == 0 {
		t.Fatal("scenario injected no faults — test proves nothing")
	}
	// The per-stage histograms survived the chaos and render coherently.
	if !bytes.Contains(body, []byte("nserver_stage_duration_seconds_bucket")) {
		t.Fatalf("stage histogram series missing from /metrics:\n%s", body)
	}
	for _, stage := range []string{"read", "decode", "handle", "encode", "send"} {
		if !bytes.Contains(body, []byte(`stage="`+stage+`"`)) {
			t.Errorf("stage %q missing from histogram export", stage)
		}
	}
}

// TestChaosRSTMidStreamReapsConnection: the peer resets the transport
// partway through a streamed large-file body (the faultnet wrapper is not
// a *net.TCPConn, so this exercises the pooled-copy streaming path — the
// same chunk loop every non-TCP transport runs). The failure must stay on
// that connection: it is torn down promptly, active connections drain to
// zero, the streaming counters stay monotonic, and the next clean request
// is served.
func TestChaosRSTMidStreamReapsConnection(t *testing.T) {
	dir, big := chaosRoot(t)
	opts := options.COPSHTTP().
		WithHardening(time.Second, time.Second, 1<<20).
		WithLargeFiles(16 << 10) // 64 KiB big.bin streams
	opts.Profiling = true
	srv, ln, addr := startChaosHTTP(t,
		copshttp.Config{DocRoot: dir, Options: &opts},
		faultnet.Scenario{Seed: 12, RSTAfterBytes: 8 << 10},
	)
	ms, err := metrics.NewServer("127.0.0.1:0", metrics.Config{
		Profile: srv.Framework().Profile(),
		Cache:   srv.Framework().Cache(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })
	scrape := func() map[string]float64 {
		t.Helper()
		raw, err := httpGet(t, ms.Addr().String(), "/metrics", 3*time.Second)
		if err != nil {
			t.Fatalf("metrics endpoint unreachable mid-chaos: %v", err)
		}
		_, body, ok := bytes.Cut(raw, []byte("\r\n\r\n"))
		if !ok {
			t.Fatalf("unframed metrics response: %.120q", raw)
		}
		return metrics.ParseCounters(string(body))
	}

	prev := scrape()
	for round := 0; round < 4; round++ {
		// The streamed reply dies at the 8 KiB RST budget, far short of
		// the 64 KiB body — that is the chaos, not the assert.
		resp, rerr := httpGet(t, addr, "/big.bin", 3*time.Second)
		if rerr == nil && len(resp) > len(big) {
			t.Fatal("full streamed body survived an 8 KiB RST budget — no fault injected")
		}
		cur := scrape()
		for _, k := range []string{
			"nserver_streamed_bytes_total",
			"nserver_stream_fallback_chunks_total",
			"nserver_sent_bytes_total",
			"nserver_connections_accepted_total",
		} {
			if cur[k] < prev[k] {
				t.Fatalf("round %d: counter %s went backwards: %v -> %v", round, k, prev[k], cur[k])
			}
		}
		prev = cur
	}
	if ln.Stats().Resets.Load() == 0 {
		t.Fatal("scenario injected no reset — test proves nothing")
	}
	if prev["nserver_streamed_bytes_total"] == 0 {
		t.Fatal("nothing streamed — the large-file path never engaged")
	}
	if prev["nserver_stream_fallback_chunks_total"] == 0 {
		t.Fatal("no fallback chunks — wrapped transport unexpectedly took sendfile")
	}

	// Every reset connection was reaped; nothing wedged in the chunk loop.
	deadline := time.Now().Add(3 * time.Second)
	for srv.Framework().ActiveConns() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d connections wedged after mid-stream RST", srv.Framework().ActiveConns())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A small exchange fits under a fresh connection's byte budget.
	resp, err := httpGet(t, addr, "/index.html", 3*time.Second)
	if err != nil || !bytes.Contains(resp, []byte(" 200 ")) {
		t.Fatalf("server unhealthy after mid-stream RST: err=%v resp=%.60q", err, resp)
	}
}

// TestChaosShardedRuntimeSurvivesFaults runs the full chaos scenario —
// mid-stream RSTs plus read stalls on a fixed seed — against the sharded
// runtime: four shards behind one faultnet listener (the accept fan-out
// path; SO_REUSEPORT cannot be fault-wrapped), work stealing active
// between the shard queues. The aggregated counters must stay monotonic
// while faults land on every shard, every shard must reap its torn
// connections, and the per-shard profiles must still sum to the
// aggregate afterwards — a steal may move an event between shards, but
// it must never lose or double-count a request.
func TestChaosShardedRuntimeSurvivesFaults(t *testing.T) {
	dir, _ := chaosRoot(t)
	opts := options.COPSHTTP().
		WithHardening(200*time.Millisecond, 500*time.Millisecond, 1<<20).
		WithShards(4)
	opts.Profiling = true
	srv, ln, addr := startChaosHTTP(t,
		copshttp.Config{DocRoot: dir, Options: &opts},
		faultnet.Scenario{
			Seed:            23,
			StallAfterBytes: 16, // keep-alive reads stall after the first request
			StallDuration:   2 * time.Second,
			RSTAfterBytes:   24 << 10, // big.bin replies die mid-stream
		},
	)
	fw := srv.Framework()
	if got := fw.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}

	ms, err := metrics.NewServer("127.0.0.1:0", metrics.Config{
		Profile: fw.Profile(),
		Cache:   fw.Cache(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })
	scrape := func() map[string]float64 {
		t.Helper()
		raw, err := httpGet(t, ms.Addr().String(), "/metrics", 3*time.Second)
		if err != nil {
			t.Fatalf("metrics endpoint unreachable mid-chaos: %v", err)
		}
		_, body, ok := bytes.Cut(raw, []byte("\r\n\r\n"))
		if !ok {
			t.Fatalf("unframed metrics response: %.120q", raw)
		}
		return metrics.ParseCounters(string(body))
	}

	monotonic := []string{
		"nserver_connections_accepted_total",
		"nserver_requests_total",
		"nserver_sent_bytes_total",
		"nserver_read_bytes_total",
		"nserver_events_processed_total",
	}
	prev := scrape()
	for round := 0; round < 4; round++ {
		// Round-robin placement spreads these connections across all four
		// shards; the faults follow them there.
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, _ = httpGet(t, addr, "/big.bin", time.Second)
				_, _ = httpGet(t, addr, "/index.html", time.Second)
			}()
		}
		wg.Wait()
		cur := scrape()
		for _, k := range monotonic {
			if cur[k] < prev[k] {
				t.Fatalf("round %d: aggregated counter %s went backwards: %v -> %v", round, k, prev[k], cur[k])
			}
		}
		prev = cur
	}

	if prev["nserver_connections_accepted_total"] == 0 {
		t.Fatal("no connections observed — chaos traffic never reached the server")
	}
	if ln.Stats().Resets.Load() == 0 && ln.Stats().Stalls.Load() == 0 {
		t.Fatal("scenario injected no faults — test proves nothing")
	}

	// Every shard reaps its own torn connections: each per-shard count
	// must drain to zero, not just the total (a wedged shard could hide
	// behind an idle one if only the sum were checked).
	deadline := time.Now().Add(3 * time.Second)
	for {
		wedged := 0
		for i := 0; i < fw.Shards(); i++ {
			wedged += fw.ShardConns(i)
		}
		if wedged == 0 {
			break
		}
		if time.Now().After(deadline) {
			for i := 0; i < fw.Shards(); i++ {
				if n := fw.ShardConns(i); n > 0 {
					t.Errorf("shard %d: %d connections wedged after chaos", i, n)
				}
			}
			t.FailNow()
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Per-shard accounting is intact: shard profiles sum to the aggregate
	// and the traffic demonstrably spread over the shards.
	snap := fw.Profile().Snapshot()
	var perShard uint64
	shardsServed := 0
	for _, ss := range fw.Profile().ShardSnapshots() {
		perShard += ss.RequestsServed
		if ss.RequestsServed > 0 {
			shardsServed++
		}
	}
	if perShard != snap.RequestsServed {
		t.Errorf("per-shard RequestsServed sum %d != aggregate %d", perShard, snap.RequestsServed)
	}
	if shardsServed < 2 {
		t.Errorf("only %d shard(s) served requests — round-robin placement not spreading load", shardsServed)
	}

	// The sharded server is healthy after the storm.
	resp, err := httpGet(t, addr, "/index.html", 3*time.Second)
	if err != nil || !bytes.Contains(resp, []byte(" 200 ")) {
		t.Fatalf("sharded server unhealthy after chaos: err=%v resp=%.60q", err, resp)
	}
}

// TestChaosFaultnetFallsBackUnderEventDriven: the chaos suite and the
// kernel-event read path must compose. A faultnet transport embeds the
// net.Conn interface and hides its descriptor, so under -event-driven
// every wrapped connection transparently falls back to the goroutine
// read path — the epoll tables stay empty while the scenario keeps
// injecting faults and every defense above keeps holding.
func TestChaosFaultnetFallsBackUnderEventDriven(t *testing.T) {
	if !reactor.PollerSupported {
		t.Skip("no kernel poller on this platform")
	}
	dir, _ := chaosRoot(t)
	opts := options.COPSHTTP().
		WithHardening(200*time.Millisecond, 500*time.Millisecond, 1<<20).
		WithEventDriven(true)
	srv, ln, addr := startChaosHTTP(t,
		copshttp.Config{DocRoot: dir, Options: &opts},
		faultnet.Scenario{Seed: 31, CorruptEvery: 1},
	)
	fw := srv.Framework()
	if !fw.EventDriven() {
		t.Fatal("EventDriven() = false on a supported platform")
	}

	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := httpGet(t, addr, fmt.Sprintf("/index.html?c=%d", i), 3*time.Second); err != nil &&
				!strings.Contains(err.Error(), "reset") && !strings.Contains(err.Error(), "EOF") {
				t.Errorf("client %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	// The faults landed: the corrupting scenario was live the whole time.
	if ln.Stats().Corrupted.Load() < clients {
		t.Fatalf("only %d corrupted chunks for %d clients — chaos not injected under -event-driven",
			ln.Stats().Corrupted.Load(), clients)
	}
	// No wrapped transport ever parked: the fd-less conns all fell back.
	if n := fw.ParkedConns(); n != 0 {
		t.Fatalf("ParkedConns = %d for descriptor-hiding transports, want 0", n)
	}
	// And the fallback connections still drain like the goroutine suite.
	deadline := time.Now().Add(3 * time.Second)
	for fw.ActiveConns() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d fallback connections wedged after corruption", fw.ActiveConns())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosEventDrivenShardsDrainPollTables drives raw-TCP chaos — the
// transports expose their descriptors, so connections genuinely park in
// the per-shard epoll tables — against four event-driven shards. A
// fixed-seed schedule mixes clean exchanges, mid-read hard resets
// (SO_LINGER 0) and silent stalls reaped by the scavenger's read-timeout
// sweep. Afterwards every fd must be gone from every shard's epoll set
// and connection table, and the poller counters must stay monotonic.
func TestChaosEventDrivenShardsDrainPollTables(t *testing.T) {
	if !reactor.PollerSupported {
		t.Skip("no kernel poller on this platform")
	}
	dir, _ := chaosRoot(t)
	opts := options.COPSHTTP().
		WithHardening(200*time.Millisecond, 500*time.Millisecond, 1<<20).
		WithShards(4).
		WithEventDriven(true)
	opts.Profiling = true
	srv, err := copshttp.New(copshttp.Config{DocRoot: dir, Options: &opts})
	if err != nil {
		t.Fatal(err)
	}
	// Raw TCP listener: no faultnet wrapper, so every accepted conn
	// carries a descriptor and parks.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Framework().Start(ln); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)
	addr := ln.Addr().String()
	fw := srv.Framework()
	if !fw.EventDriven() {
		t.Fatal("EventDriven() = false on a supported platform")
	}

	ms, err := metrics.NewServer("127.0.0.1:0", metrics.Config{
		Profile:     fw.Profile(),
		EventDriven: fw.EventDriven,
		Parked:      fw.ParkedConns,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })
	scrape := func() map[string]float64 {
		t.Helper()
		raw, err := httpGet(t, ms.Addr().String(), "/metrics", 3*time.Second)
		if err != nil {
			t.Fatalf("metrics endpoint unreachable mid-chaos: %v", err)
		}
		_, body, ok := bytes.Cut(raw, []byte("\r\n\r\n"))
		if !ok {
			t.Fatalf("unframed metrics response: %.120q", raw)
		}
		if !bytes.Contains(body, []byte("nserver_event_driven 1")) {
			t.Fatal("metrics missing nserver_event_driven gauge mid-chaos")
		}
		return metrics.ParseCounters(string(body))
	}

	// The fault schedule is a fixed-seed permutation: which connection
	// gets a clean exchange, a mid-read RST or a silent stall replays
	// identically run to run.
	rng := rand.New(rand.NewSource(42))
	monotonic := []string{
		"nserver_connections_accepted_total",
		"nserver_requests_total",
		"nserver_epoll_wakeups_total",
		"nserver_epoll_ready_events_total",
	}
	prev := scrape()
	for round := 0; round < 3; round++ {
		const conns = 8
		peers := make([]net.Conn, 0, conns)
		for i := 0; i < conns; i++ {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			peers = append(peers, c)
		}
		// Round-robin placement parks two conns per shard; wait for all
		// of them to reach the epoll tables before injecting faults.
		deadline := time.Now().Add(3 * time.Second)
		for fw.ParkedConns() < conns {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: only %d/%d conns parked", round, fw.ParkedConns(), conns)
			}
			time.Sleep(2 * time.Millisecond)
		}
		for i, c := range peers {
			switch rng.Intn(3) {
			case 0: // clean keep-alive exchange, then client close
				c.SetDeadline(time.Now().Add(3 * time.Second))
				fmt.Fprint(c, "GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n")
				if _, err := bufio.NewReader(c).ReadString('\n'); err != nil {
					t.Errorf("round %d conn %d: clean exchange failed: %v", round, i, err)
				}
				c.Close()
			case 1: // hard reset mid-request: half a request, then RST
				fmt.Fprint(c, "GET /index.h")
				if tc, ok := c.(*net.TCPConn); ok {
					tc.SetLinger(0)
				}
				c.Close()
			case 2: // silent stall: the scavenger's read-timeout sweep reaps it
				fmt.Fprint(c, "GET /stalled")
				defer c.Close()
			}
		}
		// Every fd drains from the epoll sets and the conn tables — the
		// stalled third takes until the 200ms ReadTimeout sweep fires.
		deadline = time.Now().Add(5 * time.Second)
		for fw.ParkedConns() > 0 || fw.ActiveConns() > 0 {
			if time.Now().After(deadline) {
				for i := 0; i < fw.Shards(); i++ {
					t.Logf("shard %d: parked=%d conns=%d", i, fw.ShardParked(i), fw.ShardConns(i))
				}
				t.Fatalf("round %d: tables not drained: parked=%d active=%d",
					round, fw.ParkedConns(), fw.ActiveConns())
			}
			time.Sleep(5 * time.Millisecond)
		}
		cur := scrape()
		for _, k := range monotonic {
			if cur[k] < prev[k] {
				t.Fatalf("round %d: counter %s went backwards: %v -> %v", round, k, prev[k], cur[k])
			}
		}
		prev = cur
	}

	if prev["nserver_epoll_wakeups_total"] == 0 {
		t.Fatal("no epoll wakeups recorded — connections never parked")
	}
	// Per-shard epoll tables are all empty, not just the sum.
	for i := 0; i < fw.Shards(); i++ {
		if n := fw.ShardParked(i); n != 0 {
			t.Errorf("shard %d: %d fds left in epoll table", i, n)
		}
	}
	// The event-driven sharded server is healthy after the storm.
	resp, err := httpGet(t, addr, "/index.html", 3*time.Second)
	if err != nil || !bytes.Contains(resp, []byte(" 200 ")) {
		t.Fatalf("event-driven server unhealthy after chaos: err=%v resp=%.60q", err, resp)
	}
}

// stripDateLines removes "Date:" header lines from a raw HTTP byte
// stream so two servers' renderings of the same exchange compare equal
// across a second boundary.
func stripDateLines(raw []byte) []byte {
	lines := bytes.Split(raw, []byte("\r\n"))
	out := make([]byte, 0, len(raw))
	for _, ln := range lines {
		if bytes.HasPrefix(ln, []byte("Date: ")) {
			continue
		}
		out = append(out, ln...)
		out = append(out, '\r', '\n')
	}
	return out
}

// TestChaosFragmentedWritesWireEquality: the short-write audit's pin.
// The same pipelined exchange runs against a clean server and against
// servers whose every underlying Write is capped to a handful of bytes
// (faultnet's partial-write schedule fragments each writev into many
// short kernel writes). A send path that treats a short write without
// error as success would drop the unsent tail somewhere in the pipeline;
// wire equality across fragment sizes proves every byte is carried.
func TestChaosFragmentedWritesWireEquality(t *testing.T) {
	dir, _ := chaosRoot(t)
	exchange := func(addr string) []byte {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(10 * time.Second))
		// Pipelined keep-alive pair, a ranged read, then a closing 1.0
		// request so ReadAll frames the full conversation.
		fmt.Fprintf(conn, "GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n"+
			"GET /big.bin HTTP/1.1\r\nHost: x\r\nRange: bytes=100-1123\r\n\r\n"+
			"GET /big.bin HTTP/1.1\r\nHost: x\r\n\r\n"+
			"GET /index.html HTTP/1.0\r\n\r\n")
		raw, err := io.ReadAll(conn)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	opts := options.COPSHTTP().WithHardening(0, 10*time.Second, 0)
	_, _, cleanAddr := startChaosHTTP(t,
		copshttp.Config{DocRoot: dir, Options: &opts}, faultnet.Scenario{})
	want := stripDateLines(exchange(cleanAddr))
	if len(want) < 64<<10 {
		t.Fatalf("clean exchange suspiciously small: %d bytes", len(want))
	}
	for _, frag := range []int{1, 3, 7} {
		opts := options.COPSHTTP().WithHardening(0, 10*time.Second, 0)
		_, _, addr := startChaosHTTP(t,
			copshttp.Config{DocRoot: dir, Options: &opts},
			faultnet.Scenario{Seed: int64(frag), MaxWritePerCall: frag})
		got := stripDateLines(exchange(addr))
		if !bytes.Equal(got, want) {
			t.Errorf("frag=%d: wire image diverged (got %d bytes, want %d)",
				frag, len(got), len(want))
		}
	}
}

// TestChaosSlowReaderBlockingPath: the per-flush write deadline on the
// goroutine path. A reader that keeps draining a multi-megabyte buffered
// reply — slower than WriteTimeout per reply but faster than WriteTimeout
// per chunk — must receive every byte (the deadline re-arms per 256 KiB
// flush chunk, not once per reply), while a fully stalled reader is torn
// down within roughly one chunk's deadline.
func TestChaosSlowReaderBlockingPath(t *testing.T) {
	const bodyLen = 16 << 20
	dir := t.TempDir()
	big := bytes.Repeat([]byte("0123456789abcdef"), bodyLen/16)
	if err := os.WriteFile(filepath.Join(dir, "huge.bin"), big, 0o644); err != nil {
		t.Fatal(err)
	}
	// No LargeFileThreshold: the 6 MiB body is served buffered, through
	// Send/sendBuffers — the path whose deadline used to cover the whole
	// reply.
	opts := options.COPSHTTP().WithHardening(0, 300*time.Millisecond, 0)
	opts.CacheCapacity = 32 << 20
	_, _, addr := startChaosHTTP(t,
		copshttp.Config{DocRoot: dir, Options: &opts}, faultnet.Scenario{})

	// Progressing reader: ~25 MB/s, so the whole reply takes ~0.7 s —
	// over twice the write deadline — yet every chunk makes progress.
	// The pace must clear Linux's writer wake-up threshold (about half
	// the autotuned send buffer per deadline window): the deadline
	// enforces a minimum drain rate, not merely liveness.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetReadBuffer(512 << 10)
	}
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	fmt.Fprintf(conn, "GET /huge.bin HTTP/1.0\r\n\r\n")
	var total int
	buf := make([]byte, 256<<10)
	for {
		n, err := conn.Read(buf)
		total += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("progressing reader torn down after %d bytes: %v", total, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if total < bodyLen {
		t.Fatalf("progressing reader got %d bytes, want >= %d", total, bodyLen)
	}

	// Stalled reader: never reads; the per-chunk deadline must tear the
	// connection down long before the reply completes.
	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	if tc, ok := stalled.(*net.TCPConn); ok {
		tc.SetReadBuffer(64 << 10)
	}
	fmt.Fprintf(stalled, "GET /huge.bin HTTP/1.0\r\n\r\n")
	time.Sleep(1500 * time.Millisecond) // several deadline windows, no reads
	stalled.SetDeadline(time.Now().Add(10 * time.Second))
	got, _ := io.ReadAll(stalled)
	if len(got) >= len(big) {
		t.Fatalf("stalled reader received the whole %d-byte reply; deadline never fired", len(got))
	}
	// The server is healthy after tearing the stalled connection down.
	resp, err := httpGet(t, addr, "/huge.bin", 30*time.Second)
	if err != nil || !bytes.Contains(resp, []byte(" 200 ")) {
		t.Fatalf("server unhealthy after stalled-reader teardown: err=%v resp=%.60q", err, resp)
	}
}

// TestChaosSlowReaderEventDriven: the EPOLLOUT path's slow-reader
// defense. A stalled reader of a streamed multi-megabyte file parks the
// residual, frees the worker, and is reaped by the scavenger once the
// queue stalls past WriteTimeout; a trickling-but-progressing reader
// survives far past WriteTimeout and receives every byte.
func TestChaosSlowReaderEventDriven(t *testing.T) {
	if !reactor.PollerSupported {
		t.Skip("no kernel poller on this platform")
	}
	const fileLen = 16 << 20
	dir := t.TempDir()
	big := bytes.Repeat([]byte("0123456789abcdef"), fileLen/16)
	if err := os.WriteFile(filepath.Join(dir, "huge.bin"), big, 0o644); err != nil {
		t.Fatal(err)
	}
	opts := options.COPSHTTP().
		WithHardening(0, 300*time.Millisecond, 0).
		WithLargeFiles(1 << 20).
		WithEventDriven(true)
	opts.Profiling = true
	srv, err := copshttp.New(copshttp.Config{DocRoot: dir, Options: &opts})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Framework().Start(ln); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)
	fw := srv.Framework()
	addr := ln.Addr().String()

	// Stalled reader: request the stream, read nothing.
	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	if tc, ok := stalled.(*net.TCPConn); ok {
		tc.SetReadBuffer(64 << 10)
	}
	fmt.Fprintf(stalled, "GET /huge.bin HTTP/1.0\r\n\r\n")
	deadline := time.Now().Add(5 * time.Second)
	for fw.ParkedWrites() == 0 && fw.ActiveConns() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream to a stalled reader never parked")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The scavenger reaps the stalled queue within the WriteTimeout
	// budget; the fd and the queue accounting both drain.
	deadline = time.Now().Add(5 * time.Second)
	for fw.ActiveConns() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stalled reader never reaped: parked_writes=%d queued=%d",
				fw.ParkedWrites(), fw.OutboundQueuedBytes())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if fw.ParkedWrites() != 0 || fw.OutboundQueuedBytes() != 0 {
		t.Fatalf("queue accounting leaked after reap: conns=%d bytes=%d",
			fw.ParkedWrites(), fw.OutboundQueuedBytes())
	}
	if fw.Profile().Snapshot().IdleShutdowns == 0 {
		t.Error("slow-reader reap not counted as an idle/slow shutdown")
	}

	// Trickling reader: drains ~25 MB/s — the full stream takes ~0.7 s,
	// over twice WriteTimeout — and must still complete: each EPOLLOUT
	// burst moves well past the progress quantum, refreshing the stall
	// clock. As on the blocking path, the pace must clear the kernel's
	// writability threshold (roughly half the send buffer per window).
	slow, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	if tc, ok := slow.(*net.TCPConn); ok {
		tc.SetReadBuffer(512 << 10)
	}
	slow.SetDeadline(time.Now().Add(30 * time.Second))
	fmt.Fprintf(slow, "GET /huge.bin HTTP/1.0\r\n\r\n")
	var total int
	buf := make([]byte, 256<<10)
	for {
		n, err := slow.Read(buf)
		total += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("progressing reader torn down after %d bytes: %v", total, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if total < fileLen {
		t.Fatalf("progressing reader got %d bytes, want >= %d", total, fileLen)
	}
}
