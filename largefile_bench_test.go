package repro

// Large-file streaming benchmarks (PR 4). BenchmarkLargeFileServe drives
// a live COPS-HTTP over loopback and transfers one file per op, once with
// the streaming fast path on (every file above a 64 KiB threshold is
// served from an open descriptor — sendfile on Linux, pooled copies
// elsewhere) and once with it off (the whole file is read into memory
// before the reply). Files are created sparse, so disk space is not a
// constraint; the kernel serves zero pages. Besides throughput, each run
// reports the peak heap-in-use observed across iterations: the streamed
// 256 MiB case must stay bounded near the buffered 1 MiB case, while the
// buffered 256 MiB case balloons by the file size. Run via:
//
//	make bench-sendfile

import (
	"bufio"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/copshttp"
	"repro/internal/options"
)

func BenchmarkLargeFileServe(b *testing.B) {
	sizes := []struct {
		name  string
		bytes int64
	}{
		{"1MiB", 1 << 20},
		{"16MiB", 16 << 20},
		{"256MiB", 256 << 20},
	}
	modes := []struct {
		name      string
		threshold int64
	}{
		{"streamed", 64 << 10},
		{"buffered", 0},
	}
	for _, mode := range modes {
		for _, sz := range sizes {
			b.Run(mode.name+"/"+sz.name, func(b *testing.B) {
				benchLargeServe(b, mode.threshold, sz.bytes)
			})
		}
	}
}

func benchLargeServe(b *testing.B, threshold, size int64) {
	dir := b.TempDir()
	f, err := os.Create(filepath.Join(dir, "big.bin"))
	if err != nil {
		b.Fatal(err)
	}
	if err := f.Truncate(size); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}

	opts := options.COPSHTTP()
	if threshold > 0 {
		opts = opts.WithLargeFiles(threshold)
	}
	srv, err := copshttp.New(copshttp.Config{DocRoot: dir, Options: &opts})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Shutdown)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 256<<10)

	b.SetBytes(size)
	runtime.GC()
	var peak uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Write([]byte("GET /big.bin HTTP/1.1\r\nHost: bench\r\n\r\n")); err != nil {
			b.Fatal(err)
		}
		cl, err := readResponseHead(r)
		if err != nil {
			b.Fatal(err)
		}
		if cl != size {
			b.Fatalf("Content-Length = %d, want %d", cl, size)
		}
		if _, err := io.CopyN(io.Discard, r, cl); err != nil {
			b.Fatal(err)
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapInuse > peak {
			peak = ms.HeapInuse
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(peak)/(1<<20), "heap_max_MiB")
}

// readResponseHead consumes a status line plus headers and returns the
// declared Content-Length, leaving the reader positioned at the body.
func readResponseHead(r *bufio.Reader) (int64, error) {
	status, err := r.ReadString('\n')
	if err != nil {
		return 0, err
	}
	if !strings.Contains(status, " 200 ") {
		return 0, &net.AddrError{Err: "bad status: " + strings.TrimSpace(status)}
	}
	var cl int64 = -1
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return 0, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			return cl, nil
		}
		if k, v, ok := strings.Cut(line, ":"); ok && strings.EqualFold(k, "Content-Length") {
			cl, err = strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return 0, err
			}
		}
	}
}
