// Priorityweb: a live miniature of the paper's Fig. 5 experiment. One
// COPS-HTTP server hosts two kinds of content — a corporate portal and
// personal homepages — and event scheduling (option O8) allocates more
// resources to the portal. Two client classes hammer the server
// concurrently; the per-class throughput printed at the end shows the
// quota-driven differentiation.
//
// The scheduling policy is the paper's own 13-line hook: classify by
// client IP address. Portal clients dial from 127.0.0.2, homepage
// clients from 127.0.0.1, and the priority hook inspects the source IP.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/copshttp"
	"repro/internal/events"
	"repro/internal/nserver"
	"repro/internal/options"
	"repro/internal/stats"
)

func main() {
	dur := flag.Duration("duration", 3*time.Second, "measurement duration")
	clientsPerClass := flag.Int("clients", 8, "clients per content class")
	portalQuota := flag.Int("portal-quota", 8, "scheduling quota of the portal class")
	homeQuota := flag.Int("home-quota", 1, "scheduling quota of the homepage class")
	flag.Parse()

	root, err := os.MkdirTemp("", "priorityweb")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(root)
	for _, dir := range []string{"portal", "home"} {
		if err := os.MkdirAll(filepath.Join(root, dir), 0o755); err != nil {
			fail(err)
		}
		body := strings.Repeat(dir+" content\n", 256)
		if err := os.WriteFile(filepath.Join(root, dir, "page.html"), []byte(body), 0o644); err != nil {
			fail(err)
		}
	}

	// O8 on with the chosen quotas; caching off to keep the workload
	// heavier, as in the paper's second experiment. A small worker pool
	// makes the event queue the contended resource the quotas arbitrate.
	opts := options.COPSHTTP().WithScheduling(*portalQuota, *homeQuota)
	opts.Cache = options.NoCache
	opts.CacheCapacity = 0
	opts.FileIOThreads = 0
	opts.EventThreads = 1

	// Priority hook: the IP address determines whether a request counts
	// as corporate-portal or personal-homepage traffic (the paper's
	// scheduling policy, 13 lines there and about as many here).
	prio := func(c *nserver.Conn) events.Priority {
		host, _, err := net.SplitHostPort(c.RemoteAddr().String())
		if err == nil && host == "127.0.0.2" {
			return 0 // corporate portal
		}
		return 1 // personal homepages
	}

	srv, err := copshttp.New(copshttp.Config{
		DocRoot: root, Options: &opts, Priority: prio,
		DecodeDelay: 2 * time.Millisecond, // make requests CPU-bound
	})
	if err != nil {
		fail(err)
	}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		fail(err)
	}
	defer srv.Shutdown()
	fmt.Printf("priority web server on %s (quotas portal=%d home=%d)\n",
		srv.Addr(), *portalQuota, *homeQuota)

	ctx, cancel := context.WithTimeout(context.Background(), *dur)
	defer cancel()
	var portalCount, homeCount atomic.Int64
	done := make(chan struct{}, 2**clientsPerClass)
	for i := 0; i < *clientsPerClass; i++ {
		go client(ctx, srv.Addr(), "127.0.0.2", "/portal/page.html", &portalCount, done)
		go client(ctx, srv.Addr(), "127.0.0.1", "/home/page.html", &homeCount, done)
	}
	for i := 0; i < 2**clientsPerClass; i++ {
		<-done
	}

	p := float64(portalCount.Load()) / dur.Seconds()
	h := float64(homeCount.Load()) / dur.Seconds()
	fmt.Printf("portal:    %s responses/sec\n", stats.FormatRate(p))
	fmt.Printf("homepages: %s responses/sec\n", stats.FormatRate(h))
	if h > 0 {
		fmt.Printf("achieved ratio %.2f (quota ratio %.2f)\n",
			p/h, float64(*portalQuota)/float64(*homeQuota))
	}
	fmt.Println("demo OK")
}

// client hammers one path with persistent connections of 5 requests,
// dialing from the given source IP so the server can classify it.
func client(ctx context.Context, addr, srcIP, path string, count *atomic.Int64, done chan<- struct{}) {
	defer func() { done <- struct{}{} }()
	dialer := net.Dialer{
		Timeout:   2 * time.Second,
		LocalAddr: &net.TCPAddr{IP: net.ParseIP(srcIP)},
	}
	for ctx.Err() == nil {
		conn, err := dialer.DialContext(ctx, "tcp", addr)
		if err != nil {
			return
		}
		r := bufio.NewReader(conn)
		for i := 0; i < 5 && ctx.Err() == nil; i++ {
			conn.SetDeadline(time.Now().Add(10 * time.Second))
			fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: x\r\n\r\n", path)
			if !drainResponse(r) {
				break
			}
			count.Add(1)
		}
		conn.Close()
	}
}

// drainResponse consumes one response using Content-Length.
func drainResponse(r *bufio.Reader) bool {
	line, err := r.ReadString('\n')
	if err != nil || !strings.Contains(line, "200") {
		return false
	}
	n := 0
	for {
		h, err := r.ReadString('\n')
		if err != nil {
			return false
		}
		h = strings.TrimSpace(h)
		if h == "" {
			break
		}
		if k, v, ok := strings.Cut(h, ":"); ok && strings.EqualFold(k, "Content-Length") {
			fmt.Sscanf(strings.TrimSpace(v), "%d", &n)
		}
	}
	buf := make([]byte, n)
	for read := 0; read < n; {
		m, err := r.Read(buf[read:])
		if err != nil {
			return false
		}
		read += m
	}
	return true
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "priorityweb:", err)
	os.Exit(1)
}
