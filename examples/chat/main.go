// Chat: the broadcast server developed step by step in TUTORIAL.md — a
// line-protocol chat room where every message is fanned out to all
// connected clients. It exercises the library route of the tutorial:
// a codec (O3), a worker pool (O2), idle shutdown (O7) and profiling
// (O11), with all application logic in three hook methods.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/nserver"
	"repro/internal/options"
)

// lineCodec is the tutorial's Decode/Encode pair.
type lineCodec struct{}

func (lineCodec) Decode(buf []byte) (any, int, error) {
	if i := bytes.IndexByte(buf, '\n'); i >= 0 {
		return strings.TrimRight(string(buf[:i]), "\r"), i + 1, nil
	}
	return nil, 0, nil
}

func (lineCodec) Encode(reply any) ([]byte, error) {
	return []byte(reply.(string) + "\n"), nil
}

// chat is the application: a registry of live connections and the three
// hook methods.
type chat struct {
	mu    sync.Mutex
	next  int
	conns map[*nserver.Conn]string
}

func (c *chat) OnConnect(conn *nserver.Conn) {
	c.mu.Lock()
	c.next++
	name := fmt.Sprintf("guest%d", c.next)
	c.conns[conn] = name
	c.mu.Unlock()
	_ = conn.Reply("* welcome, " + name)
	c.broadcast(conn, "* "+name+" joined")
}

func (c *chat) Handle(conn *nserver.Conn, req any) {
	line := req.(string)
	if line == "" {
		return
	}
	c.mu.Lock()
	from := c.conns[conn]
	c.mu.Unlock()
	c.broadcast(nil, from+": "+line)
}

func (c *chat) OnClose(conn *nserver.Conn, err error) {
	c.mu.Lock()
	name := c.conns[conn]
	delete(c.conns, conn)
	c.mu.Unlock()
	if name != "" {
		c.broadcast(nil, "* "+name+" left")
	}
}

// broadcast fans a message out to every live connection except skip.
func (c *chat) broadcast(skip *nserver.Conn, msg string) {
	c.mu.Lock()
	targets := make([]*nserver.Conn, 0, len(c.conns))
	for conn := range c.conns {
		if conn != skip {
			targets = append(targets, conn)
		}
	}
	c.mu.Unlock()
	for _, conn := range targets {
		_ = conn.Reply(msg)
	}
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9999", "listen address")
	demo := flag.Bool("demo", true, "run a two-client self-test and exit")
	flag.Parse()

	opts := options.Options{
		DispatcherThreads:  1,
		SeparateThreadPool: true,
		EventThreads:       4,
		Codec:              true,
		ShutdownLongIdle:   true,
		IdleTimeout:        5 * time.Minute,
		Profiling:          true,
	}
	srv, err := nserver.New(nserver.Config{
		Options: opts,
		App:     &chat{conns: map[*nserver.Conn]string{}},
		Codec:   lineCodec{},
	})
	if err != nil {
		fail(err)
	}
	if err := srv.ListenAndServe(*addr); err != nil {
		fail(err)
	}
	fmt.Printf("chat server on %s (try: nc %s)\n", srv.Addr(), srv.Addr())

	if !*demo {
		select {}
	}
	if err := selfTest(srv.Addr().String()); err != nil {
		fail(err)
	}
	srv.Shutdown()
	fmt.Println("profile:", srv.Profile().Snapshot())
	fmt.Println("demo OK")
}

// selfTest connects two clients and checks a broadcast crosses over.
func selfTest(addr string) error {
	alice, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer alice.Close()
	ar := bufio.NewReader(alice)
	alice.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := ar.ReadString('\n'); err != nil { // welcome
		return err
	}

	bob, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer bob.Close()
	br := bufio.NewReader(bob)
	bob.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := br.ReadString('\n'); err != nil { // welcome
		return err
	}
	if _, err := ar.ReadString('\n'); err != nil { // "guest2 joined"
		return err
	}

	fmt.Fprintf(alice, "hello room\n")
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return err
		}
		fmt.Printf("bob saw: %s", line)
		if strings.Contains(line, "guest1: hello room") {
			return nil
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "chat:", err)
	os.Exit(1)
}
