// Webserver: COPS-HTTP serving a small site, with profiling (O11) and the
// LFU cache policy selected — the paper's flagship application on the
// N-Server framework. The demo creates a site on disk, starts the server,
// fetches a few pages over real TCP and prints the profiling report.
//
// Run with -demo=false to keep serving (then browse to the printed
// address).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/copshttp"
	"repro/internal/options"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	demo := flag.Bool("demo", true, "run self-test requests and exit")
	flag.Parse()

	root, err := os.MkdirTemp("", "copshttp-site")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(root)
	site := map[string]string{
		"index.html":      "<html><body><h1>COPS-HTTP</h1><a href=/docs/>docs</a></body></html>",
		"docs/index.html": "<html><body>Generated from the N-Server pattern.</body></html>",
		"style.css":       "body { font-family: sans-serif }",
	}
	for name, content := range site {
		full := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			fail(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			fail(err)
		}
	}

	// COPS-HTTP preset with two tweaks: LFU replacement and profiling on.
	opts := options.COPSHTTP()
	opts.Cache = options.LFU
	opts.Profiling = true

	srv, err := copshttp.New(copshttp.Config{DocRoot: root, Options: &opts})
	if err != nil {
		fail(err)
	}
	if err := srv.ListenAndServe(*addr); err != nil {
		fail(err)
	}
	fmt.Printf("COPS-HTTP serving %s on http://%s/ (cache=%s, profiling on)\n",
		root, srv.Addr(), opts.Cache)

	if !*demo {
		select {}
	}

	for _, path := range []string{"/", "/style.css", "/docs/", "/style.css", "/missing"} {
		status, size, err := get(srv.Addr(), path)
		if err != nil {
			fail(err)
		}
		fmt.Printf("GET %-12s -> %d (%d bytes)\n", path, status, size)
	}
	srv.Shutdown()
	fmt.Println("profile:", srv.Framework().Profile().Snapshot())
	fmt.Println("demo OK")
}

// get issues one HTTP request on a fresh connection.
func get(addr, path string) (status, bodyLen int, err error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return 0, 0, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	fmt.Fprintf(conn, "GET %s HTTP/1.0\r\n\r\n", path)
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		return 0, 0, err
	}
	if fields := strings.Fields(line); len(fields) >= 2 {
		fmt.Sscanf(fields[1], "%d", &status)
	}
	body := 0
	inBody := false
	for {
		s, err := r.ReadString('\n')
		if inBody {
			body += len(s)
		}
		if !inBody && strings.TrimSpace(s) == "" {
			inBody = true
		}
		if err != nil {
			break
		}
	}
	return status, body, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "webserver:", err)
	os.Exit(1)
}
