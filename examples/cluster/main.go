// Cluster: the paper's future-work extension, live — a distributed
// N-Server serving from several "workstations" (here: three COPS-HTTP
// backends in one process) behind a connection-level balancer. The hook
// methods are identical to the single-machine server's; only the
// deployment changes.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/copshttp"
	"repro/internal/options"
	"repro/internal/profiling"
)

func main() {
	backends := flag.Int("backends", 3, "number of backend COPS-HTTP servers")
	demo := flag.Bool("demo", true, "run self-test requests and exit")
	flag.Parse()

	root, err := os.MkdirTemp("", "cluster-site")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(root)
	if err := os.WriteFile(filepath.Join(root, "index.html"),
		[]byte("<html>served by the N-Server cluster</html>"), 0o644); err != nil {
		fail(err)
	}

	// The workstations: identical COPS-HTTP instances.
	addrs := make([]string, 0, *backends)
	for i := 0; i < *backends; i++ {
		opts := options.COPSHTTP()
		srv, err := copshttp.New(copshttp.Config{DocRoot: root, Options: &opts})
		if err != nil {
			fail(err)
		}
		if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
			fail(err)
		}
		defer srv.Shutdown()
		addrs = append(addrs, srv.Addr())
		fmt.Printf("backend %d on %s\n", i, srv.Addr())
	}

	prof := profiling.New()
	lb, err := cluster.New(cluster.Config{
		Backends: addrs,
		Strategy: cluster.RoundRobin,
		Profile:  prof,
	})
	if err != nil {
		fail(err)
	}
	if err := lb.ListenAndServe("127.0.0.1:0"); err != nil {
		fail(err)
	}
	defer lb.Shutdown()
	fmt.Printf("%s on %s\n", lb, lb.Addr())

	if !*demo {
		select {}
	}
	for i := 0; i < 2**backends; i++ {
		if err := fetch(lb.Addr().String()); err != nil {
			fail(err)
		}
	}
	fmt.Println("per-backend connections:", lb.Forwarded())
	fmt.Println("front-end profile:", prof.Snapshot())
	fmt.Println("demo OK")
}

// fetch issues one request through the balancer.
func fetch(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	fmt.Fprint(conn, "GET / HTTP/1.0\r\n\r\n")
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return err
	}
	if !strings.Contains(line, "200") {
		return fmt.Errorf("unexpected status %q", line)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cluster:", err)
	os.Exit(1)
}
