// Quickstart: a Time server in ~30 lines of hook code — the paper's
// example of a trivial network server application generated from the
// N-Server pattern. It uses the Fig. 2 structural variation: no
// encoding/decoding steps (option O3 = No), so the Handle hook receives
// raw bytes and replies with raw bytes.
//
// Run it, then:  echo time | nc 127.0.0.1 7777
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/nserver"
	"repro/internal/options"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "listen address")
	demo := flag.Bool("demo", true, "run a self-test request and exit")
	flag.Parse()

	// Template options: one dispatcher thread, a small worker pool, no
	// codec (Fig. 2), idle connections shut down after a minute.
	opts := options.Options{
		DispatcherThreads:  1,
		SeparateThreadPool: true,
		EventThreads:       2,
		Codec:              false,
		ShutdownLongIdle:   true,
		IdleTimeout:        time.Minute,
	}

	// The only application code: greet, answer every chunk with the
	// current time, nothing to clean up.
	app := nserver.AppFuncs{
		Connect: func(c *nserver.Conn) {
			_ = c.Reply([]byte("# time server ready\n"))
		},
		Request: func(c *nserver.Conn, req any) {
			_ = c.Reply([]byte(time.Now().UTC().Format(time.RFC3339Nano) + "\n"))
		},
	}

	srv, err := nserver.New(nserver.Config{Options: opts, App: app})
	if err != nil {
		fail(err)
	}
	if err := srv.ListenAndServe(*addr); err != nil {
		fail(err)
	}
	fmt.Printf("time server on %s\n", srv.Addr())

	if *demo {
		if err := selfTest(srv.Addr().String()); err != nil {
			fail(err)
		}
		srv.Shutdown()
		fmt.Println("demo OK")
		return
	}
	select {}
}

// selfTest talks to the running server once.
func selfTest(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	buf := make([]byte, 256)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := conn.Read(buf) // greeting
	if err != nil {
		return err
	}
	fmt.Printf("greeting: %s", buf[:n])
	if _, err := conn.Write([]byte("time\n")); err != nil {
		return err
	}
	n, err = conn.Read(buf)
	if err != nil {
		return err
	}
	fmt.Printf("reply:    %s", buf[:n])
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "quickstart:", err)
	os.Exit(1)
}
