// Ftpserver: COPS-FTP exporting a directory, demonstrated with a scripted
// anonymous session (login, directory listing, passive-mode download).
//
// Run with -demo=false to keep serving; connect with any FTP client:
//
//	ftp 127.0.0.1 2121     (user: anonymous)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/copsftp"
	"repro/internal/ftpproto"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:2121", "control listen address")
	demo := flag.Bool("demo", true, "run a scripted session and exit")
	flag.Parse()

	root, err := os.MkdirTemp("", "copsftp-export")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(root)
	if err := os.MkdirAll(filepath.Join(root, "pub"), 0o755); err != nil {
		fail(err)
	}
	if err := os.WriteFile(filepath.Join(root, "README"),
		[]byte("COPS-FTP demo export\n"), 0o644); err != nil {
		fail(err)
	}
	if err := os.WriteFile(filepath.Join(root, "pub", "paper.txt"),
		[]byte("Using Generative Design Patterns to Develop Network Server Applications\n"), 0o644); err != nil {
		fail(err)
	}

	srv, err := copsftp.New(copsftp.Config{Root: root, ReadOnly: true})
	if err != nil {
		fail(err)
	}
	if err := srv.ListenAndServe(*addr); err != nil {
		fail(err)
	}
	fmt.Printf("COPS-FTP exporting %s on %s (read-only, anonymous)\n", root, srv.Addr())

	if !*demo {
		select {}
	}
	if err := session(srv.Addr()); err != nil {
		fail(err)
	}
	srv.Shutdown()
	fmt.Println("demo OK")
}

// session runs a scripted anonymous FTP session against the server.
func session(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	expect := func(code string) (string, error) {
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		line, err := r.ReadString('\n')
		if err != nil {
			return "", err
		}
		fmt.Printf("<- %s", line)
		if !strings.HasPrefix(line, code) {
			return "", fmt.Errorf("expected %s, got %q", code, line)
		}
		return line, nil
	}
	send := func(cmd string) {
		fmt.Printf("-> %s\n", cmd)
		fmt.Fprintf(conn, "%s\r\n", cmd)
	}

	if _, err := expect("220"); err != nil {
		return err
	}
	send("USER anonymous")
	if _, err := expect("331"); err != nil {
		return err
	}
	send("PASS guest@example.org")
	if _, err := expect("230"); err != nil {
		return err
	}
	send("PASV")
	reply, err := expect("227")
	if err != nil {
		return err
	}
	open := strings.Index(reply, "(")
	closeP := strings.Index(reply, ")")
	host, port, err := ftpproto.ParsePortArg(reply[open+1 : closeP])
	if err != nil {
		return err
	}
	dc, err := net.DialTimeout("tcp", fmt.Sprintf("%s:%d", host, port), 5*time.Second)
	if err != nil {
		return err
	}
	send("RETR pub/paper.txt")
	if _, err := expect("150"); err != nil {
		dc.Close()
		return err
	}
	data, err := io.ReadAll(dc)
	dc.Close()
	if err != nil {
		return err
	}
	fmt.Printf("downloaded %d bytes: %s", len(data), data)
	if _, err := expect("226"); err != nil {
		return err
	}
	send("QUIT")
	_, err = expect("221")
	return err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ftpserver:", err)
	os.Exit(1)
}
