package repro

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"syscall"
	"testing"
	"time"

	"repro/internal/copshttp"
	"repro/internal/options"
	"repro/internal/reactor"
)

// BenchmarkIdleParkedConns is the C1M fence for the kernel-event read
// path: park as many idle keep-alive connections as the process rlimit
// allows (the target is 100k; each loopback connection burns two
// descriptors, so the count clamps to (RLIMIT_NOFILE-headroom)/2 and the
// honest clamp is recorded as the "conns" metric), then measure what an
// idle connection costs in each read-path mode.
//
// Reported per variant:
//
//	conns       parked keep-alive connections (post-clamp)
//	goroutines  goroutine growth over the empty server — the goroutine
//	            path pays one reader per conn, the event-driven path a
//	            constant few per shard
//	bytes/conn  (HeapInuse+StackInuse) growth per connection; both
//	            variants carry the same in-process client cost, so the
//	            delta between them is the server-side saving
//	ns/op       wakeup-to-reply latency: one op sends a request on a
//	            long-idle connection and reads the full response, so the
//	            epoll wakeup (or goroutine unblock) is on the measured
//	            path
func BenchmarkIdleParkedConns(b *testing.B) {
	for _, mode := range []struct {
		name        string
		eventDriven bool
	}{
		{"goroutine", false},
		{"event-driven", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			benchIdleParked(b, mode.eventDriven)
		})
	}
}

func benchIdleParked(b *testing.B, eventDriven bool) {
	if eventDriven && !reactor.PollerSupported {
		b.Skip("no kernel poller on this platform")
	}
	target := 100_000
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err == nil {
		if lim := (int(rl.Cur) - 512) / 2; lim < target {
			b.Logf("RLIMIT_NOFILE=%d: clamping 100000 idle conns to %d", rl.Cur, lim)
			target = lim
		}
	}
	if target < 1 {
		b.Skip("descriptor limit too low to park connections")
	}

	dir := b.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "index.html"), []byte("<html>idle</html>"), 0o644); err != nil {
		b.Fatal(err)
	}
	opts := options.COPSHTTP()
	opts.EventDriven = eventDriven
	srv, err := copshttp.New(copshttp.Config{DocRoot: dir, Options: &opts})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Shutdown)
	fw := srv.Framework()
	addr := srv.Addr()

	// Empty-server baseline, after a settle GC.
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	gBefore := runtime.NumGoroutine()

	conns := make([]net.Conn, 0, target)
	b.Cleanup(func() {
		for _, c := range conns {
			c.Close()
		}
	})
	for i := 0; i < target; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			b.Fatalf("dial %d/%d: %v", i, target, err)
		}
		conns = append(conns, c)
	}
	// Wait until the server has attached (and, event-driven, parked)
	// every connection before measuring.
	settled := func() bool {
		if eventDriven {
			return fw.ParkedConns() >= target
		}
		return fw.ActiveConns() >= target
	}
	deadline := time.Now().Add(30 * time.Second)
	for !settled() {
		if time.Now().After(deadline) {
			b.Fatalf("only %d/%d conns attached (parked=%d)",
				fw.ActiveConns(), target, fw.ParkedConns())
		}
		time.Sleep(10 * time.Millisecond)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	resident := int64(after.HeapInuse+after.StackInuse) -
		int64(before.HeapInuse+before.StackInuse)
	goroutines := runtime.NumGoroutine() - gBefore
	parked := fw.ParkedConns()

	// Wakeup-to-reply: each op picks the next long-parked connection,
	// sends one request and reads the whole response. (ResetTimer wipes
	// user metrics, so the idle-cost numbers are reported after the loop.)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := conns[i%len(conns)]
		if _, err := fmt.Fprintf(c, "GET /index.html HTTP/1.1\r\nHost: idle\r\n\r\n"); err != nil {
			b.Fatal(err)
		}
		r := bufio.NewReader(c)
		cl, err := readResponseHead(r)
		if err != nil {
			b.Fatal(err)
		}
		if cl > 0 {
			if _, err := io.CopyN(io.Discard, r, cl); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(target), "conns")
	b.ReportMetric(float64(goroutines), "goroutines")
	b.ReportMetric(float64(resident)/float64(target), "bytes/conn")
	if eventDriven {
		b.ReportMetric(float64(parked), "parked")
	}
}
