package repro

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"syscall"
	"testing"
	"time"

	"repro/internal/copshttp"
	"repro/internal/options"
	"repro/internal/reactor"
)

// BenchmarkIdleParkedConns is the C1M fence for the kernel-event read
// path: park as many idle keep-alive connections as the process rlimit
// allows (the target is 100k; each loopback connection burns two
// descriptors, so the count clamps to (RLIMIT_NOFILE-headroom)/2 and the
// honest clamp is recorded as the "conns" metric), then measure what an
// idle connection costs in each read-path mode.
//
// Reported per variant:
//
//	conns       parked keep-alive connections (post-clamp)
//	goroutines  goroutine growth over the empty server — the goroutine
//	            path pays one reader per conn, the event-driven path a
//	            constant few per shard
//	bytes/conn  (HeapInuse+StackInuse) growth per connection; both
//	            variants carry the same in-process client cost, so the
//	            delta between them is the server-side saving
//	ns/op       wakeup-to-reply latency: one op sends a request on a
//	            long-idle connection and reads the full response, so the
//	            epoll wakeup (or goroutine unblock) is on the measured
//	            path
func BenchmarkIdleParkedConns(b *testing.B) {
	for _, mode := range []struct {
		name        string
		eventDriven bool
	}{
		{"goroutine", false},
		{"event-driven", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			benchIdleParked(b, mode.eventDriven)
		})
	}
}

// raiseNoFile lifts RLIMIT_NOFILE to its hard limit where the process
// is permitted to, so descriptor-bound benchmarks run at the honest
// machine ceiling rather than a conservative soft default. It returns
// the limit actually in force, which callers record as the "nofile"
// metric — a benchmark JSON without the limit that shaped it is not
// reproducible.
func raiseNoFile(b *testing.B) int {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		b.Logf("getrlimit: %v", err)
		return 0
	}
	if rl.Cur < rl.Max {
		raised := rl
		raised.Cur = rl.Max
		if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &raised); err == nil {
			rl = raised
		} else {
			b.Logf("setrlimit RLIMIT_NOFILE %d -> %d refused: %v", rl.Cur, rl.Max, err)
		}
	}
	return int(rl.Cur)
}

func benchIdleParked(b *testing.B, eventDriven bool) {
	if eventDriven && !reactor.PollerSupported {
		b.Skip("no kernel poller on this platform")
	}
	target := 100_000
	nofile := raiseNoFile(b)
	if nofile > 0 {
		if lim := (nofile - 512) / 2; lim < target {
			b.Logf("RLIMIT_NOFILE=%d: clamping 100000 idle conns to %d", nofile, lim)
			target = lim
		}
	}
	if target < 1 {
		b.Skip("descriptor limit too low to park connections")
	}

	dir := b.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "index.html"), []byte("<html>idle</html>"), 0o644); err != nil {
		b.Fatal(err)
	}
	opts := options.COPSHTTP()
	opts.EventDriven = eventDriven
	srv, err := copshttp.New(copshttp.Config{DocRoot: dir, Options: &opts})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Shutdown)
	fw := srv.Framework()
	addr := srv.Addr()

	// Empty-server baseline, after a settle GC.
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	gBefore := runtime.NumGoroutine()

	conns := make([]net.Conn, 0, target)
	b.Cleanup(func() {
		for _, c := range conns {
			c.Close()
		}
	})
	for i := 0; i < target; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			b.Fatalf("dial %d/%d: %v", i, target, err)
		}
		conns = append(conns, c)
	}
	// Wait until the server has attached (and, event-driven, parked)
	// every connection before measuring.
	settled := func() bool {
		if eventDriven {
			return fw.ParkedConns() >= target
		}
		return fw.ActiveConns() >= target
	}
	deadline := time.Now().Add(30 * time.Second)
	for !settled() {
		if time.Now().After(deadline) {
			b.Fatalf("only %d/%d conns attached (parked=%d)",
				fw.ActiveConns(), target, fw.ParkedConns())
		}
		time.Sleep(10 * time.Millisecond)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	resident := int64(after.HeapInuse+after.StackInuse) -
		int64(before.HeapInuse+before.StackInuse)
	goroutines := runtime.NumGoroutine() - gBefore
	parked := fw.ParkedConns()

	// Wakeup-to-reply: each op picks the next long-parked connection,
	// sends one request and reads the whole response. (ResetTimer wipes
	// user metrics, so the idle-cost numbers are reported after the loop.)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := conns[i%len(conns)]
		if _, err := fmt.Fprintf(c, "GET /index.html HTTP/1.1\r\nHost: idle\r\n\r\n"); err != nil {
			b.Fatal(err)
		}
		r := bufio.NewReader(c)
		cl, err := readResponseHead(r)
		if err != nil {
			b.Fatal(err)
		}
		if cl > 0 {
			if _, err := io.CopyN(io.Discard, r, cl); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(target), "conns")
	b.ReportMetric(float64(goroutines), "goroutines")
	b.ReportMetric(float64(resident)/float64(target), "bytes/conn")
	b.ReportMetric(float64(nofile), "nofile")
	if eventDriven {
		b.ReportMetric(float64(parked), "parked")
	}
}

// BenchmarkParkedSlowReaders is the write-side companion of the idle
// fence: N slow readers each request a file far larger than the kernel
// can absorb, so every reply parks its residual on the EPOLLOUT path
// and the worker returns to the pool. The bench then measures what the
// server still costs and still delivers while those transfers are in
// flight:
//
//	conns       slow-reader connections holding an in-flight reply
//	parked      connections with residuals parked on outbound queues —
//	            must equal conns, or the replies are blocking workers
//	goroutines  goroutine growth over the pre-dial server once every
//	            reply is parked — the whole point of the write path is
//	            that this stays ~0 while the drains are kernel-paced
//	nofile      the RLIMIT_NOFILE actually in force (post-raise)
//	ns/op       request latency on a separate fast connection, so the
//	            op proves the shards still serve promptly under N
//	            parked transfers
func BenchmarkParkedSlowReaders(b *testing.B) {
	if !reactor.PollerSupported {
		b.Skip("no kernel poller on this platform")
	}
	nofile := raiseNoFile(b)
	const readers = 32
	const fileSize = 32 << 20

	dir := b.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "index.html"), []byte("<html>idle</html>"), 0o644); err != nil {
		b.Fatal(err)
	}
	big := make([]byte, fileSize)
	for i := range big {
		big[i] = byte('a' + i%26)
	}
	if err := os.WriteFile(filepath.Join(dir, "big.bin"), big, 0o644); err != nil {
		b.Fatal(err)
	}
	opts := options.COPSHTTP()
	opts.EventDriven = true
	opts.LargeFileThreshold = 64 << 10
	srv, err := copshttp.New(copshttp.Config{DocRoot: dir, Options: &opts})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Shutdown)
	fw := srv.Framework()
	addr := srv.Addr()

	// Goroutine baseline: the settled server, before any slow reader.
	runtime.GC()
	gBefore := runtime.NumGoroutine()

	conns := make([]net.Conn, 0, readers)
	b.Cleanup(func() {
		for _, c := range conns {
			c.Close()
		}
	})
	for i := 0; i < readers; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			b.Fatal(err)
		}
		// Clamp the receive window so kernel absorption stays far below
		// the file size and the residual must park server-side.
		if tc, ok := c.(*net.TCPConn); ok {
			_ = tc.SetReadBuffer(16 << 10)
		}
		if _, err := fmt.Fprintf(c, "GET /big.bin HTTP/1.1\r\nHost: slow\r\n\r\n"); err != nil {
			b.Fatal(err)
		}
		conns = append(conns, c)
	}
	deadline := time.Now().Add(30 * time.Second)
	for fw.ParkedWrites() < readers {
		if time.Now().After(deadline) {
			b.Fatalf("only %d/%d replies parked", fw.ParkedWrites(), readers)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Let the workers that parked the replies finish returning to the
	// pool before counting.
	time.Sleep(200 * time.Millisecond)
	goroutines := runtime.NumGoroutine() - gBefore
	parked := fw.ParkedWrites()

	// One trickle drainer keeps every transfer live through the EPOLLOUT
	// drain path during the measurement (it is the +1 goroutine the
	// metric above deliberately excludes by sampling first).
	drainDone := make(chan struct{})
	drainStopped := make(chan struct{})
	go func() {
		defer close(drainStopped)
		buf := make([]byte, 8<<10)
		for {
			select {
			case <-drainDone:
				return
			case <-time.After(50 * time.Millisecond):
			}
			for _, c := range conns {
				c.SetReadDeadline(time.Now().Add(time.Millisecond))
				_, _ = c.Read(buf)
			}
		}
	}()
	b.Cleanup(func() { close(drainDone); <-drainStopped })

	ctrl, err := net.Dial("tcp", addr)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ctrl.Close() })
	r := bufio.NewReader(ctrl)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fmt.Fprintf(ctrl, "GET /index.html HTTP/1.1\r\nHost: ctrl\r\n\r\n"); err != nil {
			b.Fatal(err)
		}
		cl, err := readResponseHead(r)
		if err != nil {
			b.Fatal(err)
		}
		if cl > 0 {
			if _, err := io.CopyN(io.Discard, r, cl); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(readers), "conns")
	b.ReportMetric(float64(parked), "parked")
	b.ReportMetric(float64(goroutines), "goroutines")
	b.ReportMetric(float64(nofile), "nofile")
}
